package exp

import (
	"context"
	"fmt"
	"math"
	"strings"

	spin "repro"
	"repro/internal/power"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// Fig8aResult holds the PARSEC network-EDP comparison: minimal adaptive
// with 2 VCs under SPIN versus the escape-VC design with 3 VCs,
// normalised to the escape-VC baseline per benchmark (Fig. 8a).
type Fig8aResult struct {
	Entries []Fig8aEntry
}

// Fig8aEntry is one benchmark bar.
type Fig8aEntry struct {
	Benchmark     string
	NormalizedEDP float64 // SPIN-2VC EDP / EscapeVC-3VC EDP
}

// GeoMean reports the geometric mean of the normalised EDPs.
func (r *Fig8aResult) GeoMean() float64 {
	if len(r.Entries) == 0 {
		return 0
	}
	prod := 1.0
	for _, e := range r.Entries {
		prod *= e.NormalizedEDP
	}
	return math.Pow(prod, 1/float64(len(r.Entries)))
}

// String renders the result.
func (r *Fig8aResult) String() string {
	var b strings.Builder
	b.WriteString("# Fig. 8(a): network EDP, MinAdaptive-2VC-SPIN normalised to EscapeVC-3VC\n")
	for _, e := range r.Entries {
		fmt.Fprintf(&b, "%-16s %.3f\n", e.Benchmark, e.NormalizedEDP)
	}
	fmt.Fprintf(&b, "%-16s %.3f\n", "geomean", r.GeoMean())
	return b.String()
}

// Fig8a runs each PARSEC profile through both configurations and combines
// activity counters with the power model into network EDP. Each (app,
// router configuration) run is one parallel job; the per-app ratio is
// folded from the job results in suite order.
func Fig8a(ctx context.Context, o Options) (*Fig8aResult, error) {
	o = o.withDefaults()
	apps := traffic.PARSEC()
	type variant struct {
		name    string
		routing string
		scheme  string
		vcs     int
		pk      power.SchemeKind
	}
	variants := []variant{
		{"spin2vc", "min_adaptive", "spin", 2, power.SchemeSPIN},
		{"escape3vc", "escape_vc", "", 3, power.SchemeEscapeVC},
	}
	var jobs []runner.Job[float64]
	for _, app := range apps {
		for _, v := range variants {
			app, v := app, v
			key := fmt.Sprintf("fig8a/%s/%s", app.Name, v.name)
			jobs = append(jobs, runner.Job[float64]{Key: key, Run: func(ctx context.Context, seed int64) (float64, error) {
				return appEDP(ctx, app, v.routing, v.scheme, v.vcs, v.pk, seed, o)
			}})
		}
	}
	edps, err := runner.Run(ctx, o.runnerOpts(), jobs)
	if err != nil {
		return nil, err
	}
	res := &Fig8aResult{}
	for i, app := range apps {
		spinEDP, escEDP := edps[2*i], edps[2*i+1]
		if escEDP == 0 {
			continue
		}
		res.Entries = append(res.Entries, Fig8aEntry{Benchmark: app.Name, NormalizedEDP: spinEDP / escEDP})
	}
	return res, nil
}

// appEDP runs one application profile on one router configuration.
func appEDP(ctx context.Context, app traffic.AppProfile, routing, scheme string, vcs int, pk power.SchemeKind, seed int64, o Options) (float64, error) {
	cfg := spin.Config{
		Topology:   o.meshSpec(),
		Routing:    routing,
		Scheme:     scheme,
		VNets:      3,
		VCsPerVNet: vcs,
		Seed:       seed,
		Warmup:     o.Warmup,
	}
	s, err := spin.New(cfg)
	if err != nil {
		return 0, err
	}
	topo := s.Topology()
	// Drive the run from the application trace instead of a synthetic
	// pattern.
	s.Network().SetTraffic(&traffic.AppTraffic{Profile: app, Topo: topo})
	if err := runner.Cycles(ctx, s.Run, o.Cycles); err != nil {
		return 0, err
	}
	st := s.Stats()
	rc := power.MeshRouter(3*vcs, pk)
	rc.NumRouters = topo.NumRouters()
	energy := power.NetworkEnergy(power.Default(), rc,
		st.BufferWrites, st.BufferReads, st.XbarTraversals, st.LinkTraversals, st.MeasuredCycles)
	lat := st.AvgLatency()
	if lat == 0 {
		return 0, fmt.Errorf("exp: %s produced no measured traffic", app.Name)
	}
	return power.EDP(energy, lat), nil
}

// Fig8bResult is the link-utilisation breakdown at three load points
// (Fig. 8b): flits, each SM class, idle.
type Fig8bResult struct {
	Rates   []float64
	Entries []sim.LinkUtilisation
}

// String renders the result.
func (r *Fig8bResult) String() string {
	var b strings.Builder
	b.WriteString("# Fig. 8(b): link utilisation, mesh 3VC MinAdaptive+SPIN, uniform random\n")
	fmt.Fprintf(&b, "%-8s %8s %8s %8s %8s %8s %8s\n", "rate", "flit", "probe", "move", "pmove", "kill", "idle")
	for i, rate := range r.Rates {
		u := r.Entries[i]
		fmt.Fprintf(&b, "%-8.2f %8.4f %8.4f %8.4f %8.4f %8.4f %8.4f\n",
			rate, u.Flit, u.SM[0], u.SM[1], u.SM[2], u.SM[3], u.Idle)
	}
	return b.String()
}

// Fig8b measures link-cycle usage at low/medium/high load, one parallel
// job per load point.
func Fig8b(ctx context.Context, o Options) (*Fig8bResult, error) {
	o = o.withDefaults()
	res := &Fig8bResult{Rates: []float64{0.01, 0.2, 0.5}}
	var jobs []runner.Job[sim.LinkUtilisation]
	for _, rate := range res.Rates {
		rate := rate
		key := pointKey("fig8b", rate)
		jobs = append(jobs, runner.Job[sim.LinkUtilisation]{Key: key, Run: func(ctx context.Context, _ int64) (sim.LinkUtilisation, error) {
			s, err := runPoint(ctx, spin.Config{
				Topology:   o.meshSpec(),
				Routing:    "min_adaptive",
				Scheme:     "spin",
				VNets:      3,
				VCsPerVNet: 3,
			}, "uniform_random", rate, key, o)
			if err != nil {
				return sim.LinkUtilisation{}, err
			}
			return s.Network().LinkUtilisation(), nil
		}})
	}
	entries, err := runner.Run(ctx, o.runnerOpts(), jobs)
	if err != nil {
		return nil, err
	}
	res.Entries = entries
	return res, nil
}
