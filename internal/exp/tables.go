package exp

import (
	"fmt"
	"strings"

	spin "repro"
	"repro/internal/cdg"
	"repro/internal/power"
	"repro/internal/topology"
)

// Table1Row is one framework of the qualitative comparison (Table I).
// The CDG columns are verified mechanically by internal/cdg at
// construction time rather than asserted.
type Table1Row struct {
	Theory              string
	InjectionRestricted string
	AcyclicCDGRequired  string
	TopologyDependent   string
	VCsMinimalMesh      string
	VCsMinimalDfly      string
	VCsAdaptiveMesh     string
	VCsAdaptiveDfly     string
	LivelockCost        string
}

// Table1Result is the framework comparison.
type Table1Result struct {
	Rows []Table1Row
	// Verification notes from the CDG analysis.
	Notes []string
}

// String renders Table I.
func (t *Table1Result) String() string {
	var b strings.Builder
	b.WriteString("# Table I: comparison of deadlock freedom theories\n")
	fmt.Fprintf(&b, "%-12s %-10s %-12s %-10s %-28s %-28s %-10s\n",
		"theory", "inj.restr", "acyclicCDG", "topo-dep", "VCs minimal (mesh/dfly)", "VCs adaptive (mesh/dfly)", "livelock")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %-10s %-12s %-10s %-28s %-28s %-10s\n",
			r.Theory, r.InjectionRestricted, r.AcyclicCDGRequired, r.TopologyDependent,
			r.VCsMinimalMesh+" / "+r.VCsMinimalDfly,
			r.VCsAdaptiveMesh+" / "+r.VCsAdaptiveDfly, r.LivelockCost)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# verified: %s\n", n)
	}
	return b.String()
}

// Table1 builds the comparison and mechanically verifies the CDG claims
// behind it on concrete instances.
func Table1() (*Table1Result, error) {
	res := &Table1Result{Rows: []Table1Row{
		{"Dally", "No", "Yes", "Yes", "1", "2", "6", "3", "None"},
		{"Duato", "No", "No*", "Yes", "1", "2", "2", "3", "None"},
		{"FlowCtrl", "Yes", "No", "Yes", "2", "2", "2", "2", "None"},
		{"Deflection", "Yes", "No", "No", "n/a", "n/a", "0", "0", "High"},
		{"SPIN", "No", "No", "No", "1", "1", "1", "1", "None"},
	}}
	mesh, err := topology.NewMesh(4, 4, 1)
	if err != nil {
		return nil, err
	}
	dfly, err := topology.NewDragonfly(2, 4, 2, 9, 1, 3)
	if err != nil {
		return nil, err
	}
	checks := []struct {
		name    string
		acyclic bool
		got     bool
	}{
		{"mesh XY (Dally, minimal) acyclic", true, cdg.Build(mesh, 1, cdg.XYDep(mesh)).Acyclic()},
		{"mesh west-first (Dally, partial adaptive) acyclic", true, cdg.Build(mesh, 2, cdg.WestFirstDep(mesh)).Acyclic()},
		{"mesh fully-adaptive (needs SPIN) cyclic", false, cdg.Build(mesh, 1, cdg.MinAdaptiveDep(mesh)).Acyclic()},
		{"mesh Duato escape sub-network acyclic", true, cdg.Build(mesh, 3, cdg.EscapeSubgraphDep(mesh)).Acyclic()},
		{"dragonfly VC ladder (Dally) acyclic", true, cdg.Build(dfly, 2, cdg.DflyLadderDep(dfly, 2)).Acyclic()},
		{"dragonfly free-VC (needs SPIN) cyclic", false, cdg.Build(dfly, 1, cdg.DflyFreeDep(dfly)).Acyclic()},
	}
	for _, c := range checks {
		status := "OK"
		if c.got != c.acyclic {
			status = "MISMATCH"
		}
		res.Notes = append(res.Notes, fmt.Sprintf("%s [%s]", c.name, status))
		if status == "MISMATCH" {
			return nil, fmt.Errorf("exp: table I verification failed: %s", c.name)
		}
	}
	return res, nil
}

// Table2Result lists SPIN's router modules and the loop-buffer sizing
// (Table II).
type Table2Result struct {
	Rows []struct {
		Module, Description string
	}
	LoopBufferBitsMesh, LoopBufferBitsDfly int
}

// String renders Table II.
func (t *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("# Table II: SPIN router modules\n")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-14s %s\n", r.Module, r.Description)
	}
	fmt.Fprintf(&b, "loop buffer: log2(radix)*N bits = %d bits (8x8 mesh), %d bits (1024-node dragonfly)\n",
		t.LoopBufferBitsMesh, t.LoopBufferBitsDfly)
	return b.String()
}

// Table2 builds the module listing with computed loop-buffer sizes.
func Table2() *Table2Result {
	t := &Table2Result{}
	add := func(m, d string) {
		t.Rows = append(t.Rows, struct{ Module, Description string }{m, d})
	}
	add("FSM", "manages SM traversals and correctness (7-state counter FSM)")
	add("Probe Manager", "scans input-port VCs for unique blocked output ports; forks probes")
	add("Move Manager", "processes move, kill_move and probe_move per the FSM state")
	add("Loop Buffer", "stores the deadlock path: log2(radix) bits per network router")
	t.LoopBufferBitsMesh = 3 * 64  // ceil(log2(5)) * 64
	t.LoopBufferBitsDfly = 4 * 256 // ceil(log2(15)) * 256
	return t
}

// Table3Result lists the evaluated network configurations (Table III).
type Table3Result struct{ Presets []spin.Preset }

// String renders Table III.
func (t *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("# Table III: network configurations\n")
	fmt.Fprintf(&b, "%-24s %-10s %-10s %-9s %-8s %s\n", "name", "theory", "type", "adaptive", "minimal", "description")
	for _, p := range t.Presets {
		fmt.Fprintf(&b, "%-24s %-10s %-10s %-9s %-8s %s\n", p.Name, p.Theory, p.Type, p.Adaptive, p.Minimal, p.Description)
	}
	return b.String()
}

// Table3 returns the preset registry as a table.
func Table3() *Table3Result { return &Table3Result{Presets: spin.Presets()} }

// AreaModelNote summarises the power-model design points used by Fig. 10
// and the cost claims, for EXPERIMENTS.md.
func AreaModelNote() string {
	t := power.Default()
	m1 := power.RouterArea(t, power.MeshRouter(1, power.SchemeNone)).Total()
	m3 := power.RouterArea(t, power.MeshRouter(3, power.SchemeNone)).Total()
	return fmt.Sprintf("mesh router area (rel. units): 1VC=%.0f, 3VC=%.0f", m1, m3)
}
