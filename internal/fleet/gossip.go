package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"time"
)

// The gossip protocol: every Interval each node advances its own
// heartbeat and POSTs its full membership table to Fanout random live
// peers; the receiver merges it and replies with its own table, which
// the sender merges back. An entry wins a merge when its (incarnation,
// heartbeat) pair is newer — incarnation is the owner's boot timestamp,
// so a restarted node (heartbeat reset to 1) still supersedes its stale
// pre-restart rumor. Failure detection is purely local: a member whose
// merged heartbeat stops advancing ages into suspect then dead.
// Membership tables are a handful of entries, so full-table exchange is
// simpler and converges faster than delta protocols at this scale.

// wireMember is one gossiped membership entry.
type wireMember struct {
	ID          string    `json:"id"`
	Addr        string    `json:"addr"`
	Incarnation int64     `json:"incarnation"`
	Heartbeat   uint64    `json:"heartbeat"`
	Left        bool      `json:"left,omitempty"`
	Cache       CacheInfo `json:"cache"`
	Version     string    `json:"version,omitempty"`
}

// gossipMsg is the request and response body of POST /v1/gossip.
type gossipMsg struct {
	From    string       `json:"from"`
	Members []wireMember `json:"members"`
}

// loop is the gossip goroutine: rounds every Interval until Close.
func (f *Fleet) loop() {
	defer close(f.done)
	ticker := time.NewTicker(f.cfg.Interval)
	defer ticker.Stop()
	// An immediate first round gets a freshly booted node into the ring
	// (and Ready) without waiting out a full interval.
	f.round()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
			f.round()
		}
	}
}

// round is one gossip exchange: heartbeat, pick targets, swap tables,
// sweep failure states.
func (f *Fleet) round() {
	f.mu.Lock()
	self := f.members[f.cfg.ID]
	self.Heartbeat++
	self.lastSeen = time.Now()
	if f.cfg.CacheStats != nil {
		self.Cache = f.cfg.CacheStats()
	}
	msg := f.snapshotLocked()
	targets := f.targetsLocked()
	f.mu.Unlock()

	for _, addr := range targets {
		if err := f.exchange(addr, msg); err != nil {
			f.metrics.add(&f.metrics.gossipErrors, 1)
			f.logf("gossip %s: %v", addr, err)
		}
	}
	f.metrics.add(&f.metrics.gossipRounds, 1)

	f.mu.Lock()
	f.sweepLocked()
	f.ready = true
	f.mu.Unlock()
}

// snapshotLocked renders the membership table for the wire; f.mu held.
func (f *Fleet) snapshotLocked() gossipMsg {
	msg := gossipMsg{From: f.cfg.ID, Members: make([]wireMember, 0, len(f.members))}
	for _, m := range f.members {
		msg.Members = append(msg.Members, m.wireMember)
	}
	return msg
}

// targetsLocked picks up to Fanout gossip targets: routable members
// plus any seed addresses not yet matched to a member; f.mu held.
func (f *Fleet) targetsLocked() []string {
	var pool []string
	known := make(map[string]bool)
	for _, m := range f.members {
		if m.ID == f.cfg.ID || m.Addr == "" {
			continue
		}
		known[m.Addr] = true
		// Dead and left members are not gossiped to — but suspects are:
		// a reachable suspect's reply is exactly what refutes the
		// suspicion.
		if m.state == StateAlive || m.state == StateSuspect {
			pool = append(pool, m.Addr)
		}
	}
	for _, s := range f.seeds {
		if !known[s] {
			pool = append(pool, s)
		}
	}
	rand.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	if len(pool) > f.cfg.Fanout {
		pool = pool[:f.cfg.Fanout]
	}
	return pool
}

// exchange POSTs one gossip message and merges the reply.
func (f *Fleet) exchange(addr string, msg gossipMsg) error {
	body, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.Interval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/v1/gossip", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var reply gossipMsg
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return err
	}
	f.merge(reply.Members)
	return nil
}

// merge folds a received membership table into the local view.
func (f *Fleet) merge(entries []wireMember) {
	now := time.Now()
	f.mu.Lock()
	defer f.mu.Unlock()
	changed := false
	for _, wm := range entries {
		if wm.ID == "" || wm.ID == f.cfg.ID {
			// Rumors about ourselves are never merged: our own heartbeat
			// is the only authority on our liveness.
			continue
		}
		m, ok := f.members[wm.ID]
		if !ok {
			m = &member{wireMember: wm, lastSeen: now, state: StateAlive}
			if wm.Left {
				m.state = StateLeft
			}
			f.members[wm.ID] = m
			changed = true
			f.logf("member %s (%s) joined the view (%s)", wm.ID, wm.Addr, m.state)
			continue
		}
		newer := wm.Incarnation > m.Incarnation ||
			(wm.Incarnation == m.Incarnation && wm.Heartbeat > m.Heartbeat)
		if !newer {
			continue
		}
		wasEligible := m.state == StateAlive || m.state == StateSuspect
		m.wireMember = wm
		m.lastSeen = now
		if wm.Left {
			m.state = StateLeft
		} else {
			m.state = StateAlive
		}
		eligible := m.state == StateAlive || m.state == StateSuspect
		if wasEligible != eligible {
			changed = true
			f.logf("member %s is now %s", m.ID, m.state)
		}
	}
	if changed {
		f.rebuildRingLocked()
	}
}

// sweepLocked ages members through suspect and dead; f.mu held.
func (f *Fleet) sweepLocked() {
	now := time.Now()
	changed := false
	for _, m := range f.members {
		if m.ID == f.cfg.ID || m.state == StateLeft || m.state == StateDead {
			continue
		}
		age := now.Sub(m.lastSeen)
		next := m.state
		switch {
		case age > f.cfg.DeadAfter:
			next = StateDead
		case age > f.cfg.SuspectAfter:
			next = StateSuspect
		default:
			next = StateAlive
		}
		if next != m.state {
			f.logf("member %s: %s -> %s (heartbeat age %v)", m.ID, m.state, next, age.Round(time.Millisecond))
			if (m.state == StateAlive || m.state == StateSuspect) != (next == StateAlive || next == StateSuspect) {
				changed = true
			}
			m.state = next
		}
	}
	if changed {
		f.rebuildRingLocked()
	}
}

// Leave announces a graceful departure: the self entry is marked left
// with a final heartbeat bump and pushed to every routable member, so
// peers drop this node from their rings immediately instead of waiting
// out the suspicion window. Call before Close on SIGTERM.
func (f *Fleet) Leave() {
	f.mu.Lock()
	self := f.members[f.cfg.ID]
	self.Left = true
	self.Heartbeat++
	msg := f.snapshotLocked()
	var targets []string
	for _, m := range f.members {
		if m.ID != f.cfg.ID && m.Addr != "" && (m.state == StateAlive || m.state == StateSuspect) {
			targets = append(targets, m.Addr)
		}
	}
	f.mu.Unlock()
	for _, addr := range targets {
		if err := f.exchange(addr, msg); err != nil {
			f.logf("leave %s: %v", addr, err)
		}
	}
}
