package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// metrics holds the fleet's Prometheus series. The serving layer's
// registry renders them at scrape time through WriteMetrics, so the
// fleet stays free of the serve package (serve imports fleet, not the
// reverse). Per-peer series are keyed by peer ID, which is bounded by
// fleet size.
type metrics struct {
	mu sync.Mutex

	gossipRounds   int64
	gossipErrors   int64
	backfills      int64
	backfillErrors int64
	fallbacks      int64

	fillHits    map[string]int64 // by peer ID
	fillMisses  map[string]int64
	fillErrors  map[string]int64
	proxied     map[string]int64
	proxyErrors map[string]int64
}

func newMetrics() *metrics {
	return &metrics{
		fillHits:    map[string]int64{},
		fillMisses:  map[string]int64{},
		fillErrors:  map[string]int64{},
		proxied:     map[string]int64{},
		proxyErrors: map[string]int64{},
	}
}

func (m *metrics) add(field *int64, delta int64) {
	m.mu.Lock()
	*field += delta
	m.mu.Unlock()
}

func (m *metrics) addPeer(series map[string]int64, peer string, delta int64) {
	m.mu.Lock()
	series[peer] += delta
	m.mu.Unlock()
}

// peerTotal sums one per-peer series (tests and the admin endpoint).
func (m *metrics) peerTotal(series map[string]int64) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var t int64
	for _, v := range series {
		t += v
	}
	return t
}

// Counters is the admin-endpoint summary of the fleet series.
type Counters struct {
	GossipRounds   int64 `json:"gossip_rounds"`
	GossipErrors   int64 `json:"gossip_errors"`
	FillHits       int64 `json:"fill_hits"`
	FillMisses     int64 `json:"fill_misses"`
	FillErrors     int64 `json:"fill_errors"`
	Proxied        int64 `json:"proxied"`
	ProxyErrors    int64 `json:"proxy_errors"`
	Backfills      int64 `json:"backfills"`
	BackfillErrors int64 `json:"backfill_errors"`
	Fallbacks      int64 `json:"local_fallbacks"`
}

// Counters snapshots the fleet-level counters.
func (f *Fleet) Counters() Counters {
	m := f.metrics
	m.mu.Lock()
	c := Counters{
		GossipRounds:   m.gossipRounds,
		GossipErrors:   m.gossipErrors,
		Backfills:      m.backfills,
		BackfillErrors: m.backfillErrors,
		Fallbacks:      m.fallbacks,
	}
	sum := func(s map[string]int64) int64 {
		var t int64
		for _, v := range s {
			t += v
		}
		return t
	}
	c.FillHits = sum(m.fillHits)
	c.FillMisses = sum(m.fillMisses)
	c.FillErrors = sum(m.fillErrors)
	c.Proxied = sum(m.proxied)
	c.ProxyErrors = sum(m.proxyErrors)
	m.mu.Unlock()
	return c
}

// WriteMetrics renders the fleet series in Prometheus text exposition
// format; the serving registry calls it at scrape time.
func (f *Fleet) WriteMetrics(w io.Writer) {
	states := map[State]int{StateAlive: 0, StateSuspect: 0, StateDead: 0, StateLeft: 0}
	f.mu.Lock()
	for _, m := range f.members {
		states[m.state]++
	}
	ringNodes := len(f.ring.nodes())
	ready := 0
	if f.ready || (len(f.seeds) == 0 && len(f.members) == 1) {
		ready = 1
	}
	f.mu.Unlock()

	fmt.Fprintf(w, "# HELP spind_fleet_members Fleet members in the local view by health state.\n# TYPE spind_fleet_members gauge\n")
	for _, s := range []State{StateAlive, StateSuspect, StateDead, StateLeft} {
		fmt.Fprintf(w, "spind_fleet_members{state=%q} %d\n", s, states[s])
	}
	fmt.Fprintf(w, "# HELP spind_fleet_ring_nodes Members currently owning keys on the consistent-hash ring.\n# TYPE spind_fleet_ring_nodes gauge\nspind_fleet_ring_nodes %d\n", ringNodes)
	fmt.Fprintf(w, "# HELP spind_fleet_ready Whether the first gossip round has completed (readiness gate).\n# TYPE spind_fleet_ready gauge\nspind_fleet_ready %d\n", ready)

	m := f.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	writeScalar := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	writeScalar("spind_fleet_gossip_rounds_total", "Gossip rounds completed.", m.gossipRounds)
	writeScalar("spind_fleet_gossip_errors_total", "Gossip exchanges that failed.", m.gossipErrors)
	writeScalar("spind_fleet_backfills_total", "Locally computed results pushed to their ring owner.", m.backfills)
	writeScalar("spind_fleet_backfill_errors_total", "Backfill pushes that failed.", m.backfillErrors)
	writeScalar("spind_fleet_local_fallbacks_total", "Requests computed locally because the key's owner was unreachable.", m.fallbacks)
	writePeer := func(name, help string, series map[string]int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		if len(series) == 0 {
			fmt.Fprintf(w, "%s 0\n", name)
			return
		}
		peers := make([]string, 0, len(series))
		for p := range series {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		for _, p := range peers {
			fmt.Fprintf(w, "%s{peer=%q} %d\n", name, p, series[p])
		}
	}
	writePeer("spind_fleet_fill_hits_total", "Peer cache-fills that returned a cached result.", m.fillHits)
	writePeer("spind_fleet_fill_misses_total", "Peer cache-fills answered 404 (owner had no entry).", m.fillMisses)
	writePeer("spind_fleet_fill_errors_total", "Peer cache-fills that failed (peer unreachable or errored).", m.fillErrors)
	writePeer("spind_fleet_proxied_total", "Requests forwarded to their key's owner for compute.", m.proxied)
	writePeer("spind_fleet_proxy_errors_total", "Owner forwards that failed (fell back to local compute).", m.proxyErrors)
}
