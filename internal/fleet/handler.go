package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// The fleet's HTTP surface, mounted by the serving layer:
//
//	POST /v1/gossip       membership exchange (fleet-internal)
//	GET  /v1/cache/<key>  raw cached bytes for a content address, or 404
//	PUT  /v1/cache/<key>  backfill a computed result into this node
//	GET  /v1/fleet        admin view: ring, members, health, counters
//
// The cache endpoints speak raw response bytes on purpose: a cached
// entry is already the exact bytes a client would receive, so fills and
// backfills never re-encode (re-encoding is where byte-identity goes to
// die).

// HandleGossip is POST /v1/gossip: merge the sender's table, reply with
// ours.
func (f *Fleet) HandleGossip(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a gossip message", http.StatusMethodNotAllowed)
		return
	}
	var msg gossipMsg
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&msg); err != nil {
		http.Error(w, "bad gossip: "+err.Error(), http.StatusBadRequest)
		return
	}
	f.merge(msg.Members)
	f.mu.Lock()
	reply := f.snapshotLocked()
	f.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(reply)
}

// HandleCache serves GET and PUT /v1/cache/<key>.
func (f *Fleet) HandleCache(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/cache/")
	if !validKey(key) {
		http.Error(w, "bad key: want 64 hex chars", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodGet:
		val, ok := f.cfg.Cache.Get(key)
		if !ok {
			http.Error(w, "not cached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if id := r.Header.Get(HeaderRequestID); id != "" {
			w.Header().Set(HeaderRequestID, id)
		}
		w.Write(val)
	case http.MethodPut:
		val, err := io.ReadAll(io.LimitReader(r.Body, maxPeerBody+1))
		if err != nil {
			http.Error(w, "read: "+err.Error(), http.StatusBadRequest)
			return
		}
		if len(val) > maxPeerBody {
			http.Error(w, "value too large", http.StatusRequestEntityTooLarge)
			return
		}
		// The store only ever holds response JSON; refusing anything else
		// keeps a buggy or malicious peer from poisoning entries that
		// would later strict-decode-fail into recomputes.
		if !json.Valid(val) {
			http.Error(w, "value is not valid JSON", http.StatusBadRequest)
			return
		}
		if err := f.cfg.Cache.Put(key, val); err != nil {
			http.Error(w, "store: "+err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "GET or PUT", http.StatusMethodNotAllowed)
	}
}

// validKey reports whether key is a well-formed content address (the
// lowercase hex SHA-256 the cache uses).
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// AdminStatus is the GET /v1/fleet response: the live fleet state one
// operator curl away.
type AdminStatus struct {
	Self    string   `json:"self"`
	Addr    string   `json:"addr"`
	Ready   bool     `json:"ready"`
	Members []Member `json:"members"`
	Ring    RingInfo `json:"ring"`
	Count   Counters `json:"counters"`
}

// RingInfo summarizes the ownership ring.
type RingInfo struct {
	VNodes int      `json:"vnodes_per_member"`
	Nodes  []string `json:"nodes"`
}

// Status assembles the admin view (also used by tests).
func (f *Fleet) Status() AdminStatus {
	f.mu.Lock()
	nodes := f.ring.nodes()
	f.mu.Unlock()
	return AdminStatus{
		Self:    f.cfg.ID,
		Addr:    f.cfg.Advertise,
		Ready:   f.Ready(),
		Members: f.Members(),
		Ring:    RingInfo{VNodes: f.cfg.VNodes, Nodes: nodes},
		Count:   f.Counters(),
	}
}

// HandleAdmin is GET /v1/fleet.
func (f *Fleet) HandleAdmin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f.Status()); err != nil {
		fmt.Fprintln(w, "{}")
	}
}
