package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Peer-hop headers. X-Request-ID is the serving layer's per-request ID,
// propagated verbatim across fill and proxy hops so one grep finds a
// request's log lines on every node it touched. X-Fleet-Path is the
// accumulated hop path ("nodeA>nodeB"); each receiving node appends
// itself and echoes the final path in its response. X-Fleet-Forwarded
// marks a proxied request so the owner never proxies again — ownership
// views can disagree transiently, and one hop is always enough to reach
// a node willing to compute. traceparent is the W3C trace-context
// header: it carries the trace ID plus the calling span's ID, so the
// receiving node's request span becomes a child of the hop span and a
// cross-node request merges into one span tree.
const (
	HeaderRequestID   = "X-Request-ID"
	HeaderPath        = "X-Fleet-Path"
	HeaderForwarded   = "X-Fleet-Forwarded"
	HeaderTraceparent = "traceparent"
)

// Hop is the per-request context a peer call carries across the wire:
// the request ID, the accumulated hop path, and the traceparent of the
// span covering the hop. Zero fields are simply not sent.
type Hop struct {
	ReqID       string
	Path        string
	Traceparent string
}

// set stamps the hop headers onto an outbound peer request.
func (h Hop) set(req *http.Request) {
	if h.ReqID != "" {
		req.Header.Set(HeaderRequestID, h.ReqID)
	}
	if h.Path != "" {
		req.Header.Set(HeaderPath, h.Path)
	}
	if h.Traceparent != "" {
		req.Header.Set(HeaderTraceparent, h.Traceparent)
	}
}

// maxPeerBody bounds a peer response (a cached simulation result; the
// largest sweeps are a few MB).
const maxPeerBody = 64 << 20

// AppendPath extends a hop path with one node.
func AppendPath(path, node string) string {
	if path == "" {
		return node
	}
	return path + ">" + node
}

// short abbreviates a content-address key for log lines.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// ProxySpec is a request the serving layer is willing to forward to the
// key's owner: the endpoint path plus the canonical body (canonical, so
// the owner derives the identical cache key).
type ProxySpec struct {
	Path string
	Body []byte
}

// Fill asks the key's owner, then its ring successors, for an
// already-cached result. It returns the bytes and the serving peer's ID
// on a hit. Only alive non-self members are asked, at most three: the
// owner plus the two nodes that inherit its keys if it dies — anyone
// else is no likelier than chance to hold the value.
func (f *Fleet) Fill(ctx context.Context, key string, hop Hop) ([]byte, string, bool) {
	for _, m := range f.owners(key, 3) {
		if m.Self || m.State != StateAlive || m.Addr == "" {
			continue
		}
		b, err := f.fetchOne(ctx, m, key, hop)
		switch {
		case err == nil && b != nil:
			f.metrics.addPeer(f.metrics.fillHits, m.ID, 1)
			return b, m.ID, true
		case err == nil:
			f.metrics.addPeer(f.metrics.fillMisses, m.ID, 1)
		default:
			f.metrics.addPeer(f.metrics.fillErrors, m.ID, 1)
			f.logf("fill %s from %s: %v", short(key), m.ID, err)
		}
	}
	return nil, "", false
}

// fetchOne is one GET /v1/cache/<key>; (nil, nil) means a clean 404.
func (f *Fleet) fetchOne(ctx context.Context, m Member, key string, hop Hop) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.FillTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+m.Addr+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, err
	}
	hop.set(req)
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
		if err != nil {
			return nil, err
		}
		return b, nil
	case http.StatusNotFound:
		return nil, nil
	}
	return nil, fmt.Errorf("status %d", resp.StatusCode)
}

// Proxy forwards a full request to the owner, which computes (or
// singleflight-joins) and caches it locally before answering. It
// returns the response bytes plus the owner-reported hop path.
func (f *Fleet) Proxy(ctx context.Context, m Member, spec ProxySpec, hop Hop) ([]byte, string, error) {
	b, path, err := f.proxyOnce(ctx, m, spec, hop)
	if err != nil {
		f.metrics.addPeer(f.metrics.proxyErrors, m.ID, 1)
		f.logf("proxy %s to %s: %v", spec.Path, m.ID, err)
		return nil, "", err
	}
	f.metrics.addPeer(f.metrics.proxied, m.ID, 1)
	return b, path, nil
}

func (f *Fleet) proxyOnce(ctx context.Context, m Member, spec ProxySpec, hop Hop) ([]byte, string, error) {
	if m.Addr == "" {
		return nil, "", fmt.Errorf("member %s has no address", m.ID)
	}
	ctx, cancel := context.WithTimeout(ctx, f.cfg.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+m.Addr+spec.Path, bytes.NewReader(spec.Body))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderForwarded, "1")
	hop.set(req)
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, "", fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return nil, "", err
	}
	return b, resp.Header.Get(HeaderPath), nil
}

// Backfill pushes a locally computed result to the key's current owner,
// asynchronously and best-effort. It runs when a node computed a key it
// does not own (the owner was down or had to be bypassed): without the
// push, every future fill for the key would miss until the owner
// recomputes it. With it, the ring converges back to
// one-simulation-per-key as soon as the owner is reachable.
func (f *Fleet) Backfill(key string, val []byte) {
	owner, ok := f.Owner(key)
	if !ok || owner.Self || owner.Addr == "" {
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), f.cfg.FillTimeout+8*time.Second)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, "http://"+owner.Addr+"/v1/cache/"+key, bytes.NewReader(val))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := f.client.Do(req)
		if err != nil {
			f.metrics.add(&f.metrics.backfillErrors, 1)
			f.logf("backfill %s to %s: %v", short(key), owner.ID, err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			f.metrics.add(&f.metrics.backfillErrors, 1)
			f.logf("backfill %s to %s: status %d", short(key), owner.ID, resp.StatusCode)
			return
		}
		f.metrics.add(&f.metrics.backfills, 1)
	}()
}

// Fallback records that a request fell back to local compute because
// the key's owner was unreachable (the serving layer calls it so the
// counter lives next to the other fleet series).
func (f *Fleet) Fallback() {
	f.metrics.add(&f.metrics.fallbacks, 1)
}

// CollectPeers GETs path from every alive non-self member concurrently
// and returns the 200-status bodies keyed by member ID. Trace retrieval
// uses it to gather a request's spans from every node it may have
// touched; errors and non-200s are skipped (a trace merge is best
// effort — a dead peer's spans are simply absent).
func (f *Fleet) CollectPeers(ctx context.Context, path string) map[string][]byte {
	var targets []Member
	for _, m := range f.Members() {
		if !m.Self && m.State == StateAlive && m.Addr != "" {
			targets = append(targets, m)
		}
	}
	out := make(map[string][]byte, len(targets))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, m := range targets {
		wg.Add(1)
		go func(m Member) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(ctx, f.cfg.FillTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+m.Addr+path, nil)
			if err != nil {
				return
			}
			resp, err := f.client.Do(req)
			if err != nil {
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return
			}
			b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
			if err != nil {
				return
			}
			mu.Lock()
			out[m.ID] = b
			mu.Unlock()
		}(m)
	}
	wg.Wait()
	return out
}
