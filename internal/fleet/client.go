package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Peer-hop headers. X-Request-ID is the serving layer's per-request ID,
// propagated verbatim across fill and proxy hops so one grep finds a
// request's log lines on every node it touched. X-Fleet-Path is the
// accumulated hop path ("nodeA>nodeB"); each receiving node appends
// itself and echoes the final path in its response. X-Fleet-Forwarded
// marks a proxied request so the owner never proxies again — ownership
// views can disagree transiently, and one hop is always enough to reach
// a node willing to compute.
const (
	HeaderRequestID = "X-Request-ID"
	HeaderPath      = "X-Fleet-Path"
	HeaderForwarded = "X-Fleet-Forwarded"
)

// maxPeerBody bounds a peer response (a cached simulation result; the
// largest sweeps are a few MB).
const maxPeerBody = 64 << 20

// AppendPath extends a hop path with one node.
func AppendPath(path, node string) string {
	if path == "" {
		return node
	}
	return path + ">" + node
}

// short abbreviates a content-address key for log lines.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// ProxySpec is a request the serving layer is willing to forward to the
// key's owner: the endpoint path plus the canonical body (canonical, so
// the owner derives the identical cache key).
type ProxySpec struct {
	Path string
	Body []byte
}

// Fill asks the key's owner, then its ring successors, for an
// already-cached result. It returns the bytes and the serving peer's ID
// on a hit. Only alive non-self members are asked, at most three: the
// owner plus the two nodes that inherit its keys if it dies — anyone
// else is no likelier than chance to hold the value.
func (f *Fleet) Fill(ctx context.Context, key, reqID, hopPath string) ([]byte, string, bool) {
	for _, m := range f.owners(key, 3) {
		if m.Self || m.State != StateAlive || m.Addr == "" {
			continue
		}
		b, err := f.fetchOne(ctx, m, key, reqID, hopPath)
		switch {
		case err == nil && b != nil:
			f.metrics.addPeer(f.metrics.fillHits, m.ID, 1)
			return b, m.ID, true
		case err == nil:
			f.metrics.addPeer(f.metrics.fillMisses, m.ID, 1)
		default:
			f.metrics.addPeer(f.metrics.fillErrors, m.ID, 1)
			f.logf("fill %s from %s: %v", short(key), m.ID, err)
		}
	}
	return nil, "", false
}

// fetchOne is one GET /v1/cache/<key>; (nil, nil) means a clean 404.
func (f *Fleet) fetchOne(ctx context.Context, m Member, key, reqID, hopPath string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, f.cfg.FillTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+m.Addr+"/v1/cache/"+key, nil)
	if err != nil {
		return nil, err
	}
	if reqID != "" {
		req.Header.Set(HeaderRequestID, reqID)
	}
	if hopPath != "" {
		req.Header.Set(HeaderPath, hopPath)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
		if err != nil {
			return nil, err
		}
		return b, nil
	case http.StatusNotFound:
		return nil, nil
	}
	return nil, fmt.Errorf("status %d", resp.StatusCode)
}

// Proxy forwards a full request to the owner, which computes (or
// singleflight-joins) and caches it locally before answering. It
// returns the response bytes plus the owner-reported hop path.
func (f *Fleet) Proxy(ctx context.Context, m Member, spec ProxySpec, reqID, hopPath string) ([]byte, string, error) {
	b, path, err := f.proxyOnce(ctx, m, spec, reqID, hopPath)
	if err != nil {
		f.metrics.addPeer(f.metrics.proxyErrors, m.ID, 1)
		f.logf("proxy %s to %s: %v", spec.Path, m.ID, err)
		return nil, "", err
	}
	f.metrics.addPeer(f.metrics.proxied, m.ID, 1)
	return b, path, nil
}

func (f *Fleet) proxyOnce(ctx context.Context, m Member, spec ProxySpec, reqID, hopPath string) ([]byte, string, error) {
	if m.Addr == "" {
		return nil, "", fmt.Errorf("member %s has no address", m.ID)
	}
	ctx, cancel := context.WithTimeout(ctx, f.cfg.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+m.Addr+spec.Path, bytes.NewReader(spec.Body))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(HeaderForwarded, "1")
	if reqID != "" {
		req.Header.Set(HeaderRequestID, reqID)
	}
	if hopPath != "" {
		req.Header.Set(HeaderPath, hopPath)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, "", fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return nil, "", err
	}
	return b, resp.Header.Get(HeaderPath), nil
}

// Backfill pushes a locally computed result to the key's current owner,
// asynchronously and best-effort. It runs when a node computed a key it
// does not own (the owner was down or had to be bypassed): without the
// push, every future fill for the key would miss until the owner
// recomputes it. With it, the ring converges back to
// one-simulation-per-key as soon as the owner is reachable.
func (f *Fleet) Backfill(key string, val []byte) {
	owner, ok := f.Owner(key)
	if !ok || owner.Self || owner.Addr == "" {
		return
	}
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), f.cfg.FillTimeout+8*time.Second)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, "http://"+owner.Addr+"/v1/cache/"+key, bytes.NewReader(val))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := f.client.Do(req)
		if err != nil {
			f.metrics.add(&f.metrics.backfillErrors, 1)
			f.logf("backfill %s to %s: %v", short(key), owner.ID, err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode/100 != 2 {
			f.metrics.add(&f.metrics.backfillErrors, 1)
			f.logf("backfill %s to %s: status %d", short(key), owner.ID, resp.StatusCode)
			return
		}
		f.metrics.add(&f.metrics.backfills, 1)
	}()
}

// Fallback records that a request fell back to local compute because
// the key's owner was unreachable (the serving layer calls it so the
// counter lives next to the other fleet series).
func (f *Fleet) Fallback() {
	f.metrics.add(&f.metrics.fallbacks, 1)
}
