// Package fleet turns a set of spind daemons into one horizontally
// scalable simulation service. It provides three cooperating pieces:
//
//   - membership: static -peers seeding plus a lightweight HTTP gossip
//     protocol (node ID, address, heartbeat, cache statistics) with
//     failure detection via missed-heartbeat suspicion, so every node
//     converges on the same view of who is alive;
//
//   - ownership: a consistent-hash ring with virtual nodes over the
//     cache's SHA-256 content-address keys, so every request has one
//     deterministic owner that every node agrees on;
//
//   - peer cache-fill: before simulating, a non-owner asks the key's
//     owner (then its ring successors) for the already-cached result
//     over GET /v1/cache/<key>. The cache is content-addressed, so a
//     remote hit is byte-identical to a local one. When the owner has
//     no cached value, the request is proxied to it (so the fleet runs
//     each simulation once, on its owner); when the owner is down, the
//     node computes locally and backfills the owner's successor ring.
//
// The package is transport-only glue: it never runs simulations itself
// and never interprets cached bytes beyond checking they are JSON. The
// serving subsystem (internal/serve) mounts the handlers and consults
// Owner/Fill/Proxy/Backfill inside its singleflight compute path, which
// is what keeps dedup intact across the hop: N concurrent identical
// requests on one node still cost at most one peer round-trip.
package fleet

import (
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Cache is the slice of internal/cache.Store the fleet needs: raw bytes
// by content-address key. Get must not fabricate entries; Put must be
// atomic enough that a concurrent reader never sees a torn value.
type Cache interface {
	Get(key string) ([]byte, bool)
	Put(key string, val []byte) error
}

// CacheInfo is the cache-statistics summary gossiped alongside health,
// so /v1/fleet can show per-node cache population fleet-wide.
type CacheInfo struct {
	Hits     int64 `json:"hits"`
	DiskHits int64 `json:"disk_hits"`
	Misses   int64 `json:"misses"`
	Entries  int   `json:"entries"`
}

// State classifies a member's health as derived from heartbeat ages.
type State string

// Member states. A member is Alive while its heartbeat keeps advancing,
// Suspect after SuspectAfter without progress, Dead after DeadAfter,
// and Left when it announced a graceful shutdown. Alive and Suspect
// members stay on the ownership ring (suspicion is often transient and
// ring churn moves every key's owner); Dead and Left members are
// removed. Fill and Proxy only talk to Alive members, so a Suspect
// owner already routes callers to the compute-locally-and-backfill
// path before the ring reassigns its keys.
const (
	StateAlive   State = "alive"
	StateSuspect State = "suspect"
	StateDead    State = "dead"
	StateLeft    State = "left"
)

// Member is a point-in-time public view of one fleet node.
type Member struct {
	ID    string    `json:"id"`
	Addr  string    `json:"addr"`
	State State     `json:"state"`
	Self  bool      `json:"self,omitempty"`
	Cache CacheInfo `json:"cache"`
	// Version is the member's gossiped build identity ("version+commit"),
	// so /v1/fleet shows a mixed-version fleet mid-rollout at a glance.
	Version string `json:"version,omitempty"`
	// Heartbeat is the member's own monotonic counter; LastSeenMS is how
	// long ago (local clock, milliseconds) it last advanced.
	Heartbeat  uint64 `json:"heartbeat"`
	LastSeenMS int64  `json:"last_seen_ms"`
}

// Config assembles a Fleet.
type Config struct {
	// ID is this node's unique name (required; cmd/spind defaults it to
	// the advertise address).
	ID string
	// Advertise is the host:port other fleet members reach this node at
	// (required when Peers is non-empty or peers will dial in).
	Advertise string
	// Peers seeds membership with known addresses; gossip discovers the
	// rest. Empty means a fleet of one (everything stays local).
	Peers []string
	// Interval is the gossip period (default 1s).
	Interval time.Duration
	// SuspectAfter and DeadAfter bound failure detection: a member whose
	// heartbeat has not advanced for SuspectAfter is suspect (no longer
	// routed to), for DeadAfter dead (dropped from the ring). Defaults:
	// 3x and 10x Interval.
	SuspectAfter time.Duration
	DeadAfter    time.Duration
	// Fanout is how many peers each gossip round exchanges state with
	// (default 2).
	Fanout int
	// VNodes is the virtual-node count per member on the consistent-hash
	// ring (default 64); more means better balance, slower rebuilds.
	VNodes int
	// Cache is the local content-addressed store served to peers over
	// GET /v1/cache/<key> and written by backfills (required).
	Cache Cache
	// CacheStats, when non-nil, feeds the gossiped per-node CacheInfo.
	CacheStats func() CacheInfo
	// FillTimeout bounds one peer cache-fill GET (default 2s); a fill is
	// an optimization, so it fails fast into the proxy/local path.
	FillTimeout time.Duration
	// ProxyTimeout bounds one proxied compute round-trip (default 3m; it
	// covers a full simulation on the owner, so it must exceed the
	// serving layer's per-request budget).
	ProxyTimeout time.Duration
	// Version, when set, is gossiped with membership so every node's
	// /v1/fleet view shows peer build identities.
	Version string
	// Log, when non-nil, receives membership transitions and gossip
	// errors as structured records.
	Log *slog.Logger
	// Client overrides the HTTP client used for every peer call (tests).
	Client *http.Client
}

// member is the internal membership record: the gossiped fields plus
// local failure-detection bookkeeping.
type member struct {
	wireMember
	lastSeen time.Time // local clock when Heartbeat last advanced
	state    State
}

// Fleet is the membership + ownership subsystem. Construct with New,
// start gossip with Start, stop with Close.
type Fleet struct {
	cfg     Config
	client  *http.Client
	metrics *metrics

	mu      sync.Mutex
	members map[string]*member // by ID; always contains self
	seeds   []string           // peer addresses not yet matched to an ID
	ring    *ring
	ready   bool
	started bool
	closed  bool

	stop chan struct{}
	done chan struct{}
}

// New validates cfg and builds the Fleet (gossip does not run until
// Start).
func New(cfg Config) (*Fleet, error) {
	if cfg.ID == "" {
		return nil, fmt.Errorf("fleet: Config.ID is required")
	}
	if cfg.Cache == nil {
		return nil, fmt.Errorf("fleet: Config.Cache is required")
	}
	if len(cfg.Peers) > 0 && cfg.Advertise == "" {
		return nil, fmt.Errorf("fleet: Config.Advertise is required when peers are configured")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.SuspectAfter <= 0 {
		cfg.SuspectAfter = 3 * cfg.Interval
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 10 * cfg.Interval
	}
	if cfg.DeadAfter < cfg.SuspectAfter {
		cfg.DeadAfter = cfg.SuspectAfter
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.FillTimeout <= 0 {
		cfg.FillTimeout = 2 * time.Second
	}
	if cfg.ProxyTimeout <= 0 {
		cfg.ProxyTimeout = 3 * time.Minute
	}
	f := &Fleet{
		cfg:     cfg,
		client:  cfg.Client,
		metrics: newMetrics(),
		members: make(map[string]*member),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	now := time.Now()
	self := &member{
		wireMember: wireMember{
			ID:          cfg.ID,
			Addr:        cfg.Advertise,
			Incarnation: now.UnixNano(),
			Heartbeat:   1,
			Version:     cfg.Version,
		},
		lastSeen: now,
		state:    StateAlive,
	}
	f.members[cfg.ID] = self
	for _, p := range cfg.Peers {
		p = strings.TrimSpace(p)
		if p == "" || p == cfg.Advertise {
			continue
		}
		f.seeds = append(f.seeds, p)
	}
	f.rebuildRingLocked()
	return f, nil
}

// SelfID reports this node's ID.
func (f *Fleet) SelfID() string { return f.cfg.ID }

// Ready reports whether the first gossip round has completed (vacuously
// true for a fleet of one). Load balancers should not route to a node
// before this: it has not yet learned the ring and would compute keys
// its peers already cached.
func (f *Fleet) Ready() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ready || (len(f.seeds) == 0 && len(f.members) == 1)
}

// Start launches the gossip loop (idempotent).
func (f *Fleet) Start() {
	f.mu.Lock()
	run := !f.started && !f.closed
	f.started = true
	f.mu.Unlock()
	if run {
		go f.loop()
	}
}

// Close stops the gossip loop. It does not announce departure; call
// Leave first for a graceful exit.
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	started := f.started
	f.mu.Unlock()
	close(f.stop)
	if started {
		<-f.done
	}
}

// Members returns the current membership view, self first then sorted
// by ID.
func (f *Fleet) Members() []Member {
	f.mu.Lock()
	defer f.mu.Unlock()
	now := time.Now()
	out := make([]Member, 0, len(f.members))
	for _, m := range f.members {
		out = append(out, f.publicLocked(m, now))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// MemberState reports one member's current state ("" if unknown).
func (f *Fleet) MemberState(id string) State {
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.members[id]; ok {
		return m.state
	}
	return ""
}

// publicLocked converts an internal record to the public view; f.mu
// must be held.
func (f *Fleet) publicLocked(m *member, now time.Time) Member {
	return Member{
		ID:         m.ID,
		Addr:       m.Addr,
		State:      m.state,
		Self:       m.ID == f.cfg.ID,
		Cache:      m.Cache,
		Version:    m.Version,
		Heartbeat:  m.Heartbeat,
		LastSeenMS: now.Sub(m.lastSeen).Milliseconds(),
	}
}

// Owner reports the ring owner of a content-address key. ok is false
// only when the ring is empty (never: self is always on it).
func (f *Fleet) Owner(key string) (Member, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id, ok := f.ring.owner(key)
	if !ok {
		return Member{}, false
	}
	m := f.members[id]
	if m == nil {
		return Member{}, false
	}
	return f.publicLocked(m, time.Now()), true
}

// owners reports the first n distinct ring nodes for key (owner first,
// then successors), as public views.
func (f *Fleet) owners(key string, n int) []Member {
	f.mu.Lock()
	defer f.mu.Unlock()
	ids := f.ring.owners(key, n)
	now := time.Now()
	out := make([]Member, 0, len(ids))
	for _, id := range ids {
		if m := f.members[id]; m != nil {
			out = append(out, f.publicLocked(m, now))
		}
	}
	return out
}

// rebuildRingLocked reconstructs the consistent-hash ring from the
// members currently eligible for ownership (alive + suspect); f.mu must
// be held.
func (f *Fleet) rebuildRingLocked() {
	ids := make([]string, 0, len(f.members))
	for id, m := range f.members {
		if m.state == StateAlive || m.state == StateSuspect {
			ids = append(ids, id)
		}
	}
	f.ring = newRing(ids, f.cfg.VNodes)
}

// logf writes one structured record to the configured logger, if any.
// Fleet messages are operational prose (membership transitions, peer
// call failures), so the formatted text is the record message and the
// subsystem rides along as an attribute.
func (f *Fleet) logf(format string, args ...interface{}) {
	if f.cfg.Log != nil {
		f.cfg.Log.Info(fmt.Sprintf("fleet: "+format, args...), slog.String("subsys", "fleet"))
	}
}
