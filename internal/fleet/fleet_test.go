package fleet

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// memCache is a map-backed Cache for tests.
type memCache struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemCache() *memCache { return &memCache{m: map[string][]byte{}} }

func (c *memCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *memCache) Put(key string, val []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = val
	return nil
}

// testNode is one fleet member on a real loopback listener.
type testNode struct {
	fleet *Fleet
	cache *memCache
	srv   *httptest.Server
	addr  string
}

// newTestNode boots a node. peers seeds its membership; interval drives
// both gossip and the failure-detection clocks.
func newTestNode(t *testing.T, id string, peers []string, interval time.Duration) *testNode {
	t.Helper()
	n := &testNode{cache: newMemCache()}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/gossip", func(w http.ResponseWriter, r *http.Request) { n.fleet.HandleGossip(w, r) })
	mux.HandleFunc("/v1/cache/", func(w http.ResponseWriter, r *http.Request) { n.fleet.HandleCache(w, r) })
	n.srv = httptest.NewServer(mux)
	n.addr = strings.TrimPrefix(n.srv.URL, "http://")
	f, err := New(Config{
		ID:        id,
		Advertise: n.addr,
		Peers:     peers,
		Interval:  interval,
		Cache:     n.cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.fleet = f
	t.Cleanup(func() {
		f.Close()
		n.srv.Close()
	})
	return n
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func testKey(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

// TestRingDeterministicBalancedMinimalDisruption pins the three
// consistent-hashing properties the fleet depends on: every node builds
// the identical ring regardless of member-insertion order; keys spread
// across members rather than piling onto one; and removing a member
// only remaps the keys it owned.
func TestRingDeterministicBalancedMinimalDisruption(t *testing.T) {
	r1 := newRing([]string{"a", "b", "c"}, 64)
	r2 := newRing([]string{"c", "a", "b"}, 64)
	const keys = 3000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		k := testKey(fmt.Sprint(i))
		o1, ok1 := r1.owner(k)
		o2, ok2 := r2.owner(k)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("key %d: owner depends on insertion order (%q vs %q)", i, o1, o2)
		}
		counts[o1]++
	}
	for id, c := range counts {
		if c < keys/10 {
			t.Errorf("member %s owns only %d/%d keys — ring badly unbalanced", id, c, keys)
		}
	}

	shrunk := newRing([]string{"a", "b"}, 64)
	moved := 0
	for i := 0; i < keys; i++ {
		k := testKey(fmt.Sprint(i))
		before, _ := r1.owner(k)
		after, _ := shrunk.owner(k)
		if before != "c" && before != after {
			t.Fatalf("key %d moved from surviving member %q to %q when c left", i, before, after)
		}
		if before == "c" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("c owned nothing; the disruption check proved nothing")
	}
}

// TestRingOwnersDistinct checks owners() walks to distinct successors.
func TestRingOwnersDistinct(t *testing.T) {
	r := newRing([]string{"a", "b", "c"}, 64)
	got := r.owners(testKey("x"), 3)
	if len(got) != 3 {
		t.Fatalf("owners = %v, want 3 distinct members", got)
	}
	seen := map[string]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatalf("owners = %v contains a duplicate", got)
		}
		seen[id] = true
	}
	if more := r.owners(testKey("x"), 10); len(more) != 3 {
		t.Fatalf("owners(10) on a 3-member ring = %v, want all 3", more)
	}
}

// TestGossipConvergence boots three nodes seeded only with the first
// one's address and waits for every node to see all three alive with
// identical rings.
func TestGossipConvergence(t *testing.T) {
	const interval = 20 * time.Millisecond
	a := newTestNode(t, "a", nil, interval)
	b := newTestNode(t, "b", []string{a.addr}, interval)
	c := newTestNode(t, "c", []string{a.addr}, interval)
	for _, n := range []*testNode{a, b, c} {
		n.fleet.Start()
	}
	allAlive := func(n *testNode) bool {
		ms := n.fleet.Members()
		if len(ms) != 3 {
			return false
		}
		for _, m := range ms {
			if m.State != StateAlive {
				return false
			}
		}
		return true
	}
	waitFor(t, 5*time.Second, "all nodes to see 3 alive members", func() bool {
		return allAlive(a) && allAlive(b) && allAlive(c) &&
			a.fleet.Ready() && b.fleet.Ready() && c.fleet.Ready()
	})
	want := fmt.Sprint(a.fleet.Status().Ring.Nodes)
	for _, n := range []*testNode{b, c} {
		if got := fmt.Sprint(n.fleet.Status().Ring.Nodes); got != want {
			t.Fatalf("ring views diverge: %s vs %s", got, want)
		}
	}
	// Ownership agrees across nodes for a sample of keys.
	for i := 0; i < 50; i++ {
		k := testKey(fmt.Sprint(i))
		oa, _ := a.fleet.Owner(k)
		ob, _ := b.fleet.Owner(k)
		oc, _ := c.fleet.Owner(k)
		if oa.ID != ob.ID || ob.ID != oc.ID {
			t.Fatalf("key %d: owners disagree (%s/%s/%s)", i, oa.ID, ob.ID, oc.ID)
		}
	}
}

// TestFailureDetection kills one converged node and watches the
// survivors age it through suspect into dead, dropping it off the ring.
func TestFailureDetection(t *testing.T) {
	const interval = 20 * time.Millisecond
	a := newTestNode(t, "a", nil, interval)
	b := newTestNode(t, "b", []string{a.addr}, interval)
	a.fleet.Start()
	b.fleet.Start()
	waitFor(t, 5*time.Second, "a and b to converge", func() bool {
		return len(a.fleet.Members()) == 2 && len(b.fleet.Members()) == 2
	})

	b.fleet.Close()
	b.srv.Close()
	waitFor(t, 5*time.Second, "a to declare b dead", func() bool {
		return a.fleet.MemberState("b") == StateDead
	})
	if nodes := a.fleet.Status().Ring.Nodes; len(nodes) != 1 || nodes[0] != "a" {
		t.Fatalf("ring after death = %v, want [a]", nodes)
	}
}

// TestGracefulLeave checks that Leave propagates immediately: the peer
// marks the leaver left (not suspect) and removes it from the ring
// without waiting out the suspicion window.
func TestGracefulLeave(t *testing.T) {
	const interval = 50 * time.Millisecond
	a := newTestNode(t, "a", nil, interval)
	b := newTestNode(t, "b", []string{a.addr}, interval)
	a.fleet.Start()
	b.fleet.Start()
	waitFor(t, 5*time.Second, "a and b to converge", func() bool {
		return len(a.fleet.Members()) == 2 && len(b.fleet.Members()) == 2
	})

	b.fleet.Leave()
	waitFor(t, 2*time.Second, "a to see b leave", func() bool {
		return a.fleet.MemberState("b") == StateLeft
	})
	if nodes := a.fleet.Status().Ring.Nodes; len(nodes) != 1 || nodes[0] != "a" {
		t.Fatalf("ring after leave = %v, want [a]", nodes)
	}
}

// TestHandleCacheRoundTrip exercises the peer cache endpoint: PUT then
// GET round-trips bytes, misses 404, malformed keys and non-JSON values
// are rejected.
func TestHandleCacheRoundTrip(t *testing.T) {
	n := newTestNode(t, "solo", nil, time.Second)
	key := testKey("v")
	val := `{"answer":42}`

	do := func(method, path, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, n.srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := do(http.MethodGet, "/v1/cache/"+key, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before PUT: status %d, want 404", resp.StatusCode)
	}
	if resp := do(http.MethodPut, "/v1/cache/"+key, val); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: status %d, want 204", resp.StatusCode)
	}
	resp := do(http.MethodGet, "/v1/cache/"+key, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after PUT: status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != val {
		t.Fatalf("GET body = %q, want %q", b, val)
	}
	if resp := do(http.MethodPut, "/v1/cache/"+key, `{"torn":`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT invalid JSON: status %d, want 400", resp.StatusCode)
	}
	if resp := do(http.MethodGet, "/v1/cache/deadbeef", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET malformed key: status %d, want 400", resp.StatusCode)
	}
}

// TestFillAndBackfill checks the data plane between two converged
// nodes: Fill pulls the owner's cached bytes, and Backfill pushes a
// locally computed value to the owner.
func TestFillAndBackfill(t *testing.T) {
	const interval = 20 * time.Millisecond
	a := newTestNode(t, "a", nil, interval)
	b := newTestNode(t, "b", []string{a.addr}, interval)
	a.fleet.Start()
	b.fleet.Start()
	waitFor(t, 5*time.Second, "a and b to converge", func() bool {
		return len(a.fleet.Members()) == 2 && len(b.fleet.Members()) == 2
	})
	byID := map[string]*testNode{"a": a, "b": b}

	// Find a key b does not own, seed the owner's cache, Fill from b.
	var key string
	var owner Member
	for i := 0; ; i++ {
		key = testKey(fmt.Sprint("fill", i))
		m, ok := b.fleet.Owner(key)
		if ok && !m.Self {
			owner = m
			break
		}
	}
	val := []byte(`{"cached":true}`)
	byID[owner.ID].cache.Put(key, val)
	got, peer, ok := b.fleet.Fill(context.Background(), key, Hop{ReqID: "req-1", Path: "b"})
	if !ok || peer != owner.ID || string(got) != string(val) {
		t.Fatalf("Fill = (%q, %q, %v), want (%q, %q, true)", got, peer, ok, val, owner.ID)
	}
	if b.fleet.Counters().FillHits != 1 {
		t.Fatalf("counters = %+v, want 1 fill hit", b.fleet.Counters())
	}

	// A key this node does not own, computed locally, backfills to the
	// owner's cache.
	var bkey string
	for i := 0; ; i++ {
		bkey = testKey(fmt.Sprint("backfill", i))
		if m, ok := b.fleet.Owner(bkey); ok && !m.Self {
			owner = m
			break
		}
	}
	bval := []byte(`{"computed":"locally"}`)
	b.fleet.Backfill(bkey, bval)
	waitFor(t, 2*time.Second, "backfill to land on the owner", func() bool {
		v, ok := byID[owner.ID].cache.Get(bkey)
		return ok && string(v) == string(bval)
	})
}

// TestRestartSupersedesStaleRumor checks the incarnation tie-break: a
// member that restarts (heartbeat reset, newer incarnation) replaces
// its stale pre-restart entry instead of being ignored.
func TestRestartSupersedesStaleRumor(t *testing.T) {
	a := newTestNode(t, "a", nil, time.Second)
	a.fleet.merge([]wireMember{{ID: "b", Addr: "x:1", Incarnation: 100, Heartbeat: 500}})
	a.fleet.merge([]wireMember{{ID: "b", Addr: "x:2", Incarnation: 200, Heartbeat: 1}})
	a.fleet.mu.Lock()
	m := a.fleet.members["b"]
	addr, inc := m.Addr, m.Incarnation
	a.fleet.mu.Unlock()
	if addr != "x:2" || inc != 200 {
		t.Fatalf("restart rumor lost: addr=%s incarnation=%d", addr, inc)
	}
	// And the stale one cannot come back.
	a.fleet.merge([]wireMember{{ID: "b", Addr: "x:1", Incarnation: 100, Heartbeat: 999}})
	a.fleet.mu.Lock()
	addr = a.fleet.members["b"].Addr
	a.fleet.mu.Unlock()
	if addr != "x:2" {
		t.Fatal("stale incarnation overwrote the restarted member")
	}
}
