package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring with virtual nodes. Every fleet member
// contributes vnodes points on a 64-bit circle; a key is owned by the
// member whose point is the first at or clockwise of the key's hash.
// Virtual nodes smooth the per-member share toward 1/N, and consistency
// means membership changes only reassign the keys that mapped to the
// departed (or newly arrived) member — the property that makes peer
// cache-fill effective across rolling restarts.
//
// The hash is SHA-256 truncated to 64 bits. It must be identical on
// every node (ownership is only useful if the whole fleet agrees), so
// nothing process-local (map order, random seeds) may leak in.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	id   string
}

// hash64 maps an arbitrary string onto the ring circle.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds a ring over ids with vnodes virtual nodes each.
func newRing(ids []string, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(ids)*vnodes)}
	for _, id := range ids {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hash64(id + "#" + strconv.Itoa(i)), id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between different members is vanishingly
		// unlikely but must still order deterministically fleet-wide.
		return r.points[i].id < r.points[j].id
	})
	return r
}

// owner reports the member owning key (false on an empty ring).
func (r *ring) owner(key string) (string, bool) {
	ids := r.owners(key, 1)
	if len(ids) == 0 {
		return "", false
	}
	return ids[0], true
}

// owners reports up to n distinct members for key: the owner first,
// then ring successors in order. Successors are the natural backfill
// and fill-fallback targets — when the owner changes (death, join), the
// new owner is by construction one of the old owner's neighbors for
// most keys.
func (r *ring) owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			out = append(out, p.id)
		}
	}
	return out
}

// nodes reports the distinct member IDs on the ring, sorted.
func (r *ring) nodes() []string {
	seen := make(map[string]bool)
	for _, p := range r.points {
		seen[p.id] = true
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
