package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func validScenario() Scenario {
	return Scenario{
		Topology: "mesh:4x4",
		Routing:  "min_adaptive",
		Scheme:   "spin",
		Traffic:  "uniform_random",
		Rate:     0.2,
		Seed:     7,
		Cycles:   1000,
	}
}

// TestCanonicalRoundTrip is the request ⇄ Scenario contract: canonical
// bytes decode back to the normalized scenario, and re-canonicalizing is
// a fixed point.
func TestCanonicalRoundTrip(t *testing.T) {
	sc := validScenario()
	can := sc.Canonical()
	dec, err := DecodeScenario(bytes.NewReader(can))
	if err != nil {
		t.Fatal(err)
	}
	if !CanonicalEqual(dec, sc) || fmt.Sprintf("%+v", dec) != fmt.Sprintf("%+v", sc.Normalized()) {
		t.Fatalf("round trip changed the scenario:\n  in  %+v\n  out %+v", sc.Normalized(), dec)
	}
	if !bytes.Equal(dec.Canonical(), can) {
		t.Fatalf("canonicalization is not a fixed point:\n  %s\n  %s", can, dec.Canonical())
	}
}

// TestCanonicalDefaultsCollapse pins the cache-key property: spelling a
// default out and omitting it must produce identical canonical bytes.
func TestCanonicalDefaultsCollapse(t *testing.T) {
	implicit := validScenario()
	explicit := implicit
	explicit.VNets = 1
	explicit.VCsPerVNet = 1
	explicit.VCDepth = 5
	explicit.DataFrac = 0.5
	explicit.TDD = 128 // the spin default
	if !CanonicalEqual(implicit, explicit) {
		t.Fatalf("explicit defaults changed the canonical form:\n  %s\n  %s",
			implicit.Canonical(), explicit.Canonical())
	}
	// "none" and "" name the same (absent) scheme; an unused TDD is noise.
	a := validScenario()
	a.Scheme = "none"
	a.TDD = 999
	b := validScenario()
	b.Scheme = ""
	if !CanonicalEqual(a, b) {
		t.Fatalf("scheme aliasing not collapsed:\n  %s\n  %s", a.Canonical(), b.Canonical())
	}
}

// TestCanonicalDistinguishes guards against over-normalization: knobs
// that change the simulation must change the canonical bytes.
func TestCanonicalDistinguishes(t *testing.T) {
	base := validScenario()
	mutations := map[string]func(*Scenario){
		"rate":    func(s *Scenario) { s.Rate = 0.3 },
		"seed":    func(s *Scenario) { s.Seed = 8 },
		"cycles":  func(s *Scenario) { s.Cycles = 2000 },
		"warmup":  func(s *Scenario) { s.Warmup = 100 },
		"tdd":     func(s *Scenario) { s.TDD = 64 },
		"traffic": func(s *Scenario) { s.Traffic = "tornado" },
		"vcs":     func(s *Scenario) { s.VCsPerVNet = 3 },
	}
	for name, mutate := range mutations {
		sc := base
		mutate(&sc)
		if CanonicalEqual(base, sc) {
			t.Errorf("%s: mutation did not change the canonical form", name)
		}
	}
}

// TestDecodeScenarioStrict rejects unknown fields and trailing garbage.
func TestDecodeScenarioStrict(t *testing.T) {
	if _, err := DecodeScenario(strings.NewReader(`{"topology":"mesh:4x4","vc_per_vnet":3}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := DecodeScenario(strings.NewReader(`{"topology":"mesh:4x4"} {"x":1}`)); err == nil {
		t.Fatal("trailing document accepted")
	}
	if _, err := DecodeScenario(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestValidateRejects enumerates the request-shape errors.
func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Scenario){
		"no topology":    func(s *Scenario) { s.Topology = "" },
		"no traffic":     func(s *Scenario) { s.Traffic = "" },
		"zero rate":      func(s *Scenario) { s.Rate = 0 },
		"zero cycles":    func(s *Scenario) { s.Cycles = 0 },
		"neg warmup":     func(s *Scenario) { s.Warmup = -1 },
		"warmup>=cycles": func(s *Scenario) { s.Warmup = 1000 },
		"bad datafrac":   func(s *Scenario) { s.DataFrac = 1.5 },
		"neg vnets":      func(s *Scenario) { s.VNets = -1 },
		"neg tdd":        func(s *Scenario) { s.TDD = -1 },
		"neg drain":      func(s *Scenario) { s.DrainCycles = -5 },
	}
	for name, mutate := range cases {
		sc := validScenario()
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
	if err := validScenario().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

// TestNormalizedSimulatesIdentically is the load-bearing claim behind
// cache-key normalization: the normalized scenario runs bit-identically
// to the original.
func TestNormalizedSimulatesIdentically(t *testing.T) {
	sc := validScenario()
	sc.Cycles = 500
	run := func(s Scenario) string {
		res, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		res.Scenario = Scenario{} // the echo differs in spelling by design
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if got, want := run(sc.Normalized()), run(sc); got != want {
		t.Fatalf("normalization changed simulation results:\n  raw  %s\n  norm %s", want, got)
	}
}
