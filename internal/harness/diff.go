package harness

import (
	"fmt"

	spin "repro"
	"repro/internal/traffic"
)

// The differential oracle: run the scenario as configured (typically
// SPIN-enabled adaptive routing) while recording the injected workload,
// then replay the *identical* trace into the Duato escape-VC baseline,
// which is deadlock-free by construction. Both executions must drain and
// deliver exactly the recorded packet set, packet for packet.
//
// Recording then replaying matters: the simulator's RNG is shared
// between traffic generation and adaptive tie-breaking, so two different
// configurations given the same seed would generate *different*
// workloads. The trace pins the workload; the configurations only differ
// in how they move it.

// DiffResult is the outcome of one differential comparison.
type DiffResult struct {
	Primary  *Result `json:"primary"`
	Baseline *Result `json:"baseline"`
	// Mismatches lists delivery-set disagreements between the runs
	// (empty when the oracle passes).
	Mismatches []string `json:"mismatches,omitempty"`
	// TraceLen is the recorded workload size both runs had to deliver.
	TraceLen int `json:"trace_len"`
}

// Failed reports whether either run violated invariants or the delivery
// sets disagree.
func (d *DiffResult) Failed() bool {
	return d.Primary.Failed() || d.Baseline.Failed() || len(d.Mismatches) > 0
}

// Summary is a one-line verdict.
func (d *DiffResult) Summary() string {
	if !d.Failed() {
		return fmt.Sprintf("ok: both configurations delivered the same %d packets", d.TraceLen)
	}
	switch {
	case len(d.Mismatches) > 0:
		return "delivery sets differ: " + d.Mismatches[0]
	case d.Primary.Failed():
		return "primary: " + d.Primary.Summary()
	default:
		return "baseline: " + d.Baseline.Summary()
	}
}

// RunDifferential executes the scenario's differential oracle. The
// scenario must be DifferentialEligible (an escape-VC baseline exists
// for its topology).
func RunDifferential(sc Scenario) (*DiffResult, error) {
	if !sc.DifferentialEligible() {
		return nil, fmt.Errorf("harness: no escape-VC baseline for topology %q", sc.Topology)
	}
	// Primary run, recording the workload it generates. The recorder is
	// transparent: this is exactly the run Run(sc) would do.
	s, err := sc.Sim()
	if err != nil {
		return nil, err
	}
	rec := &traffic.Recorder{Gen: s.Network().Config().Traffic}
	s.Network().SetTraffic(rec)
	primary, err := runChecked(sc, s)
	if err != nil {
		return nil, err
	}

	// Baseline run: same topology/seed, escape-VC routing, no scheme,
	// driven by the recorded trace instead of a generator.
	bsc := sc.Baseline()
	bcfg := bsc.Config()
	bcfg.Traffic = ""
	bs, err := spin.New(bcfg)
	if err != nil {
		return nil, err
	}
	bs.Network().SetTraffic(&traffic.Replay{Trace: &rec.Trace})
	baseline, err := runChecked(bsc, bs)
	if err != nil {
		return nil, err
	}

	d := &DiffResult{Primary: primary, Baseline: baseline, TraceLen: len(rec.Trace.Entries)}
	d.Mismatches = compareDeliveries(primary, baseline, len(rec.Trace.Entries))
	return d, nil
}

// compareDeliveries checks that both runs delivered the full recorded
// workload with identical per-packet tuples. Packet IDs are assigned in
// injection order and both runs inject the trace entries in the same
// order, so tuples are compared ID by ID.
func compareDeliveries(a, b *Result, want int) []string {
	var ms []string
	add := func(format string, args ...any) {
		if len(ms) < 8 {
			ms = append(ms, fmt.Sprintf(format, args...))
		}
	}
	if len(a.Delivered) != want {
		add("primary delivered %d of %d recorded packets", len(a.Delivered), want)
	}
	if len(b.Delivered) != want {
		add("baseline delivered %d of %d recorded packets", len(b.Delivered), want)
	}
	byID := func(ds []Delivery) map[uint64]Delivery {
		m := make(map[uint64]Delivery, len(ds))
		for _, d := range ds {
			m[d.ID] = d
		}
		return m
	}
	am, bm := byID(a.Delivered), byID(b.Delivered)
	for id, ad := range am {
		bd, ok := bm[id]
		if !ok {
			add("packet %d delivered by primary only (src %d dst %d)", id, ad.Src, ad.Dst)
			continue
		}
		if ad != bd {
			add("packet %d differs: primary %+v baseline %+v", id, ad, bd)
		}
	}
	for id, bd := range bm {
		if _, ok := am[id]; !ok {
			add("packet %d delivered by baseline only (src %d dst %d)", id, bd.Src, bd.Dst)
		}
	}
	return ms
}
