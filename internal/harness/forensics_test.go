package harness

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestBuildCDGCutAdaptiveMeshIsCyclic(t *testing.T) {
	cut := BuildCDGCut(Scenario{Topology: "mesh:4x4", Routing: "min_adaptive", VCsPerVNet: 1})
	if cut == nil {
		t.Fatal("no CDG cut for min_adaptive on a mesh")
	}
	if cut.Cycles == 0 || cut.LargestCycle == 0 {
		t.Fatalf("fully-adaptive mesh CDG reported acyclic: %+v", cut)
	}
	if len(cut.LargestCycleChannels) == 0 || len(cut.LargestCycleChannels) > cdgCutMaxChannels {
		t.Fatalf("largest-cycle channel list has %d entries, want 1..%d",
			len(cut.LargestCycleChannels), cdgCutMaxChannels)
	}
	for _, ch := range cut.LargestCycleChannels {
		if ch.Src == ch.Dst {
			t.Fatalf("channel %+v is a self-link", ch)
		}
	}
	if !strings.Contains(cut.Summary, "cyclic") {
		t.Fatalf("summary %q does not mention cyclicity", cut.Summary)
	}
}

func TestBuildCDGCutXYIsAcyclic(t *testing.T) {
	cut := BuildCDGCut(Scenario{Topology: "mesh:4x4", Routing: "xy", VCsPerVNet: 1})
	if cut == nil {
		t.Fatal("no CDG cut for xy on a mesh")
	}
	if cut.Cycles != 0 || cut.LargestCycle != 0 || len(cut.LargestCycleChannels) != 0 {
		t.Fatalf("XY mesh CDG reported cyclic: %+v", cut)
	}
}

func TestBuildCDGCutUnsupportedRoutingIsNil(t *testing.T) {
	if cut := BuildCDGCut(Scenario{Topology: "mesh:4x4", Routing: "not_a_routing"}); cut != nil {
		t.Fatalf("unsupported routing produced a cut: %+v", cut)
	}
	if cut := BuildCDGCut(Scenario{Topology: "bogus:topo", Routing: "xy"}); cut != nil {
		t.Fatalf("unbuildable topology produced a cut: %+v", cut)
	}
}

func TestForensicsWriteLoadRoundTrip(t *testing.T) {
	res := &Result{
		Scenario: Scenario{Topology: "mesh:4x4", Routing: "min_adaptive", Scheme: "spin",
			Traffic: "uniform", Rate: 0.3, Seed: 7, Cycles: 100},
		Violations: []sim.Violation{{Cycle: 42, Rule: "recovery", Detail: "stuck"}},
		Forensics: &sim.ForensicsSnapshot{
			Cycle:  42,
			Reason: "recovery",
			Total:  3,
			Events: []sim.Event{{Cycle: 40, Kind: sim.EvSpinStart, Router: 1}},
			SpinningVCs: []sim.VCForensics{
				{Router: 1, Port: 2, VC: 0, Spinning: true, OutPort: 1, DownRouter: 2, DownPort: 3, DownVC: 0},
			},
		},
	}
	dir := t.TempDir()
	path, err := WriteForensics(dir, NewForensics(res))
	if err != nil {
		t.Fatal(err)
	}
	f, err := LoadForensics(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != ForensicsSchema {
		t.Fatalf("schema %q, want %s", f.Schema, ForensicsSchema)
	}
	if f.Scenario.Key() != res.Scenario.Key() {
		t.Fatal("scenario did not survive the round trip")
	}
	if f.Snapshot == nil || f.Snapshot.Reason != "recovery" || len(f.Snapshot.Events) != 1 {
		t.Fatalf("snapshot did not survive: %+v", f.Snapshot)
	}
	if f.Snapshot.Events[0].Kind != sim.EvSpinStart {
		t.Fatalf("event kind decoded as %v, want spin_start", f.Snapshot.Events[0].Kind)
	}
	if len(f.Snapshot.SpinningVCs) != 1 || f.Snapshot.SpinningVCs[0].DownRouter != 2 {
		t.Fatalf("VC chain did not survive: %+v", f.Snapshot.SpinningVCs)
	}
	if f.CDG == nil || f.CDG.Cycles == 0 {
		t.Fatalf("forensics lacks the cyclic CDG cut: %+v", f.CDG)
	}
	if !strings.Contains(f.Repro, "spinsim -replay-forensics") {
		t.Fatalf("repro %q lacks the replay command", f.Repro)
	}
}

func TestReportFailureWritesForensicsArtifact(t *testing.T) {
	res := &Result{
		Scenario:  Scenario{Topology: "mesh:4x4", Routing: "xy", Traffic: "uniform", Rate: 0.1, Seed: 3, Cycles: 50},
		Drained:   false,
		Injected:  10,
		Ejected:   4,
		Forensics: &sim.ForensicsSnapshot{Cycle: 50, Reason: "drain_incomplete"},
	}
	dir := t.TempDir()
	msg := ReportFailure(dir, res)
	if !strings.Contains(msg, "forensics-"+res.Scenario.Key()+".json") {
		t.Fatalf("report does not mention the forensics artifact:\n%s", msg)
	}
	f, err := LoadForensics(dir + "/forensics-" + res.Scenario.Key() + ".json")
	if err != nil {
		t.Fatal(err)
	}
	if f.Snapshot == nil || f.Snapshot.Reason != "drain_incomplete" {
		t.Fatalf("forensics snapshot %+v, want drain_incomplete", f.Snapshot)
	}
	if len(f.Notes) == 0 || !strings.Contains(f.Notes[0], "drain incomplete") {
		t.Fatalf("notes %v lack the drain verdict", f.Notes)
	}
}
