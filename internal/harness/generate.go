package harness

import (
	"math/rand"

	"repro/internal/workload"
)

// The generator's job is to emit only *valid* scenarios — combinations
// the simulator accepts and that are deadlock-free by construction
// (acyclic routing) or by recovery (cyclic routing under SPIN) — so that
// every invariant violation a run produces is a real bug, not a
// misconfigured experiment. The validity rules encoded here mirror
// BuildRouting/BuildTopology in the top-level package and the CDG
// verdicts of Table I:
//
//   - xy, westfirst, escape_vc and dfly_min_ladder build acyclic channel
//     dependencies and may run without a recovery scheme;
//   - min_adaptive, favors_min, favors_nmin, dfly_min and ugal_spin are
//     cyclic and MUST run under SPIN;
//   - escape_vc needs a mesh/torus and >= 2 VCs per vnet; the bit
//     permutation patterns need power-of-two terminal counts; transpose
//     needs a square mesh or power-of-two terminals.

// topoChoice describes one generatable topology and what is legal on it.
type topoChoice struct {
	spec      string
	terminals int
	square    bool // square mesh (transpose legal regardless of pow2)
	mesh      bool // *topology.Mesh underneath (xy/westfirst/escape_vc legal)
	dragonfly bool
	// acyclic / cyclic routing choices legal on this topology. Cyclic
	// ones are always paired with scheme "spin".
	acyclic []string
	cyclic  []string
}

var topoChoices = []topoChoice{
	{spec: "mesh:3x3", terminals: 9, square: true, mesh: true,
		acyclic: []string{"xy", "westfirst", "escape_vc"},
		cyclic:  []string{"min_adaptive", "favors_min", "favors_nmin"}},
	{spec: "mesh:4x4", terminals: 16, square: true, mesh: true,
		acyclic: []string{"xy", "westfirst", "escape_vc"},
		cyclic:  []string{"min_adaptive", "favors_min", "favors_nmin"}},
	{spec: "mesh:4x2", terminals: 8, mesh: true,
		acyclic: []string{"xy", "westfirst", "escape_vc"},
		cyclic:  []string{"min_adaptive", "favors_min"}},
	{spec: "mesh:5x5", terminals: 25, square: true, mesh: true,
		acyclic: []string{"xy", "westfirst", "escape_vc"},
		cyclic:  []string{"min_adaptive", "favors_min"}},
	// XY on a torus never takes wrap links (mesh-coordinate turns only),
	// so it stays acyclic; escape_vc's escape ring is likewise non-wrap.
	{spec: "torus:4x4", terminals: 16, square: true, mesh: true,
		acyclic: []string{"xy", "escape_vc"},
		cyclic:  []string{"min_adaptive", "favors_min"}},
	{spec: "dragonfly:2,4,2,9", terminals: 72, dragonfly: true,
		acyclic: []string{"dfly_min_ladder"},
		cyclic:  []string{"dfly_min", "ugal_spin"}},
	{spec: "jellyfish:10,1,3", terminals: 10,
		cyclic: []string{"min_adaptive", "favors_min"}},
	{spec: "irregular:4x4:3", terminals: 16,
		cyclic: []string{"min_adaptive", "favors_min"}},
}

// patterns legal for a topology: the bit permutations need power-of-two
// terminal counts; transpose additionally accepts square meshes.
func (tc topoChoice) patterns() []string {
	ps := []string{"uniform_random", "tornado", "neighbor"}
	if tc.terminals&(tc.terminals-1) == 0 {
		ps = append(ps, "bit_complement", "bit_reverse", "bit_rotation", "shuffle", "transpose")
	} else if tc.square {
		ps = append(ps, "transpose")
	}
	return ps
}

func pick(rng *rand.Rand, opts []string) string { return opts[rng.Intn(len(opts))] }

// Generate draws one random valid scenario. The same rng state always
// yields the same scenario, so a harness run over seeds 1..N is a fixed,
// reproducible corpus.
func Generate(rng *rand.Rand) Scenario {
	tc := topoChoices[rng.Intn(len(topoChoices))]

	sc := Scenario{
		Topology: tc.spec,
		Traffic:  pick(rng, tc.patterns()),
		// Saturating loads are where deadlock and recovery live; keep
		// the mass of the distribution there but visit low load too.
		Rate:       0.08 + 0.5*rng.Float64(),
		DataFrac:   0.5,
		VNets:      1 + rng.Intn(2),
		VCsPerVNet: 1 + rng.Intn(3),
		VCDepth:    5,
		Seed:       1 + rng.Int63n(1<<30),
		TDD:        []int64{16, 24, 32}[rng.Intn(3)],
		Cycles:     600 + rng.Int63n(600),
	}

	// Choose routing: acyclic (schemeless) or cyclic (under SPIN).
	all := len(tc.acyclic) + len(tc.cyclic)
	if k := rng.Intn(all); k < len(tc.acyclic) {
		sc.Routing = tc.acyclic[k]
		sc.Scheme = ""
	} else {
		sc.Routing = tc.cyclic[k-len(tc.acyclic)]
		sc.Scheme = "spin"
	}
	// escape_vc needs a distinct escape VC; the minimal-routing VC
	// ladder needs one VC per global hop plus one to stay acyclic.
	if (sc.Routing == "escape_vc" || sc.Routing == "dfly_min_ladder") && sc.VCsPerVNet < 2 {
		sc.VCsPerVNet = 2
	}
	// The big dragonfly is the slowest topology; cap its runtime share.
	if tc.dragonfly {
		sc.Cycles = 400
		sc.VNets = 1
	}
	return sc
}

// FromBits decodes raw fuzzer-chosen values into a valid scenario by
// clamping every field into its legal range — the bridge between go
// test -fuzz's primitive corpus entries and the scenario space. The
// mapping is total: every input decodes to a runnable scenario, so the
// fuzzer spends its budget exploring behaviour, not fighting validation.
func FromBits(topoSel, routeSel, patSel, vcs, vnets uint8, ratePct uint16, seed int64, cycles uint16) Scenario {
	tc := topoChoices[int(topoSel)%len(topoChoices)]
	pats := tc.patterns()
	sc := Scenario{
		Topology:   tc.spec,
		Traffic:    pats[int(patSel)%len(pats)],
		Rate:       0.05 + float64(ratePct%55)/100, // 0.05..0.59
		DataFrac:   0.5,
		VNets:      1 + int(vnets)%2,
		VCsPerVNet: 1 + int(vcs)%3,
		VCDepth:    5,
		Seed:       seed&0x7fffffff + 1,
		TDD:        16,
		Cycles:     100 + int64(cycles)%400,
	}
	all := len(tc.acyclic) + len(tc.cyclic)
	if k := int(routeSel) % all; k < len(tc.acyclic) {
		sc.Routing = tc.acyclic[k]
	} else {
		sc.Routing = tc.cyclic[k-len(tc.acyclic)]
		sc.Scheme = "spin"
	}
	if (sc.Routing == "escape_vc" || sc.Routing == "dfly_min_ladder") && sc.VCsPerVNet < 2 {
		sc.VCsPerVNet = 2
	}
	if tc.dragonfly {
		sc.Cycles = 200
		sc.VNets = 1
	}
	return sc
}

// GenerateWorkload draws a random valid scenario carrying a shaped
// workload block — closed-loop finite-window clients, bursty on/off
// sources, or hotspot skew — on top of Generate's topology/routing
// space. Like Generate, the same rng state always yields the same
// scenario, so a seed range is a fixed corpus.
func GenerateWorkload(rng *rand.Rand) Scenario {
	sc := Generate(rng)
	w := &workload.Spec{}
	switch rng.Intn(3) {
	case 0: // closed-loop request/response clients
		w.Mode = "closed"
		w.Window = 1 + rng.Intn(8)
		w.ReqLen = 1
		w.RespLen = 1 + rng.Intn(5)
		if rng.Intn(2) == 0 {
			w.Think = int64(1 + rng.Intn(16))
		}
		if sc.VNets < 2 {
			sc.VNets = 2 // reply class
		}
	case 1: // bursty open-loop
		w.BurstOn = int64(4 + rng.Intn(28))
		w.BurstOff = int64(4 + rng.Intn(60))
		// Build compensates the rate by the duty cycle, so trim the base
		// rate to keep in-burst injection below the hard clamp.
		sc.Rate = 0.05 + 0.15*rng.Float64()
	case 2: // hotspot skew
		w.HotFrac = 0.05 + 0.3*rng.Float64()
		w.Hotspots = 1 + rng.Intn(2)
	}
	sc.Workload = w
	return sc
}

// WorkloadFromBits layers a fuzzer-chosen workload block onto a base
// scenario, clamping every knob into its legal range the same way
// FromBits does. The mapping is total: every input yields a runnable
// scenario.
func WorkloadFromBits(sc Scenario, mode, wa, wb, wc uint8) Scenario {
	w := &workload.Spec{}
	switch mode % 3 {
	case 0:
		w.Mode = "closed"
		w.Window = 1 + int(wa)%8
		w.ReqLen = 1
		w.RespLen = 1 + int(wb)%5
		w.Think = int64(wc) % 17
		if sc.VNets < 2 {
			sc.VNets = 2
		}
	case 1:
		w.BurstOn = 2 + int64(wa)%30
		w.BurstOff = 2 + int64(wb)%62
		if sc.Rate > 0.25 {
			sc.Rate = 0.25
		}
	case 2:
		w.HotFrac = float64(1+int(wa)%40) / 100
		w.Hotspots = 1 + int(wb)%2
	}
	sc.Workload = w
	return sc
}

// DifferentialEligible reports whether the scenario has an escape-VC
// baseline to compare against: the baseline routing needs a mesh/torus.
func (sc Scenario) DifferentialEligible() bool {
	for _, tc := range topoChoices {
		if tc.spec == sc.Topology {
			return tc.mesh
		}
	}
	return false
}

// Baseline derives the escape-VC reference configuration used by the
// differential oracle: same topology, workload and seed, but Duato
// escape-VC routing with no recovery scheme — deadlock-free by
// construction, so its delivered packet set is ground truth.
func (sc Scenario) Baseline() Scenario {
	b := sc
	b.Routing = "escape_vc"
	b.Scheme = ""
	b.TDD = 0
	if b.VCsPerVNet < 2 {
		b.VCsPerVNet = 2
	}
	return b
}
