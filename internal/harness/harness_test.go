package harness

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// artifactDir is where failing scenarios leave their replay artifacts;
// t.TempDir would delete them with the test, which defeats the point.
func artifactDir() string {
	if d := os.Getenv("HARNESS_ARTIFACT_DIR"); d != "" {
		return d
	}
	return os.TempDir()
}

func TestGenerateProducesValidScenarios(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 300; seed++ {
		sc := Generate(rand.New(rand.NewSource(seed)))
		if _, err := sc.Sim(); err != nil {
			t.Fatalf("seed %d generated invalid scenario %s: %v", seed, sc, err)
		}
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 50; seed++ {
		a := Generate(rand.New(rand.NewSource(seed)))
		b := Generate(rand.New(rand.NewSource(seed)))
		if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
			t.Fatalf("seed %d: %+v != %+v", seed, a, b)
		}
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	t.Parallel()
	sc := Generate(rand.New(rand.NewSource(7)))
	b, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	var back Scenario
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", back) != fmt.Sprintf("%+v", sc) {
		t.Fatalf("round trip changed the scenario: %+v -> %+v", sc, back)
	}
}

// TestRandomScenarios is the acceptance corpus: 200 generated scenarios
// over the fixed seed range 1..200, every one run with the invariant
// checker attached and drained to empty; scenarios with an escape-VC
// baseline additionally run the differential oracle on the recorded
// workload. A failure writes a replayable scenario.json artifact.
func TestRandomScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run is not short")
	}
	for seed := int64(1); seed <= 200; seed++ {
		sc := Generate(rand.New(rand.NewSource(seed)))
		t.Run(fmt.Sprintf("%03d/%s", seed, sc), func(t *testing.T) {
			t.Parallel()
			if sc.DifferentialEligible() {
				d, err := RunDifferential(sc)
				if err != nil {
					t.Fatal(err)
				}
				if d.Failed() {
					res := d.Primary
					if !d.Primary.Failed() && d.Baseline.Failed() {
						res = d.Baseline
					}
					res.Violations = append(res.Violations, mismatchViolations(d)...)
					t.Fatal(ReportFailure(artifactDir(), res))
				}
				return
			}
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				t.Fatal(ReportFailure(artifactDir(), res))
			}
		})
	}
}

func TestGenerateWorkloadProducesValidScenarios(t *testing.T) {
	t.Parallel()
	for seed := int64(0); seed < 300; seed++ {
		sc := GenerateWorkload(rand.New(rand.NewSource(seed)))
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d generated invalid scenario %s: %v", seed, sc, err)
		}
		if _, err := sc.Sim(); err != nil {
			t.Fatalf("seed %d generated unbuildable scenario %s: %v", seed, sc, err)
		}
	}
}

// TestWorkloadScenarios extends the acceptance corpus with 200 shaped
// workloads — closed-loop, bursty, hotspot — each run under the full
// invariant checker (including the window rules) and drained to empty.
func TestWorkloadScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run is not short")
	}
	for seed := int64(1); seed <= 200; seed++ {
		sc := GenerateWorkload(rand.New(rand.NewSource(1000 + seed)))
		t.Run(fmt.Sprintf("%03d/%s", seed, sc), func(t *testing.T) {
			t.Parallel()
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				t.Fatal(ReportFailure(artifactDir(), res))
			}
		})
	}
}

// mismatchViolations folds differential delivery mismatches into checker
// violations so they land in the artifact.
func mismatchViolations(d *DiffResult) []sim.Violation {
	var vs []sim.Violation
	for _, m := range d.Mismatches {
		vs = append(vs, sim.Violation{Rule: "differential", Detail: m})
	}
	return vs
}

// TestSpinRecoveryBoundRegression pins the paper's recovery-bound claim:
// on a 4x4 mesh under fully adaptive routing at saturation, the global
// oracle must never see a deadlock outlive the recovery bound — SPIN's
// distributed detection has to find and break every one of them. 20
// pinned seeds, run by plain `go test ./...` (no -fuzz needed).
func TestSpinRecoveryBoundRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation regression is not short")
	}
	var totalSpins int64
	results := make([]*Result, 20)
	for i := range results {
		i := i
		t.Run(fmt.Sprintf("seed%02d", i+1), func(t *testing.T) {
			t.Parallel()
			sc := Scenario{
				Topology:   "mesh:4x4",
				Routing:    "min_adaptive",
				Scheme:     "spin",
				Traffic:    "uniform_random",
				Rate:       0.55, // deep saturation for a 1-VC adaptive mesh
				DataFrac:   0.5,
				VNets:      1,
				VCsPerVNet: 1,
				VCDepth:    5,
				Seed:       int64(i + 1),
				TDD:        16,
				Cycles:     2500,
			}
			res, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				t.Fatal(ReportFailure(artifactDir(), res))
			}
			results[i] = res
		})
	}
	t.Cleanup(func() {
		for _, r := range results {
			if r != nil {
				totalSpins += r.Spins
			}
		}
		// The point of saturating a fully adaptive 1-VC mesh is that
		// deadlocks actually form; a corpus with zero spins would mean
		// the regression is not exercising recovery at all.
		if totalSpins == 0 {
			t.Error("no spins across 20 saturation seeds: recovery untested")
		}
	})
}

// brokenScenario is a deliberately invalid configuration — fully
// adaptive cyclic routing with no recovery scheme at saturation — that
// deterministically deadlocks, standing in for a broken build in the
// artifact tests.
func brokenScenario() Scenario {
	return Scenario{
		Topology:   "mesh:4x4",
		Routing:    "min_adaptive",
		Scheme:     "", // cyclic routing without recovery: guaranteed stuck
		Traffic:    "bit_complement",
		Rate:       0.6,
		DataFrac:   0.5,
		VNets:      1,
		VCsPerVNet: 1,
		VCDepth:    5,
		Seed:       11,
		TDD:        16,
		Cycles:     1200,
		// Keep the doomed drain cheap; it can never complete.
		DrainCycles: 2000,
	}
}

// TestArtifactReplayReproduces is the broken-build drill: a violating
// run must produce a scenario.json artifact whose replay reproduces the
// identical violations.
func TestArtifactReplayReproduces(t *testing.T) {
	t.Parallel()
	res, err := Run(brokenScenario())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("deliberately broken scenario did not fail")
	}
	if len(res.Violations) == 0 {
		t.Fatal("expected checker violations, only drain failure")
	}
	dir := t.TempDir()
	path, err := WriteArtifact(dir, NewArtifact(res))
	if err != nil {
		t.Fatal(err)
	}
	art, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", art.Scenario) != fmt.Sprintf("%+v", res.Scenario) {
		t.Fatalf("artifact scenario drifted: %+v != %+v", art.Scenario, res.Scenario)
	}
	if art.Repro == "" {
		t.Fatal("artifact missing repro command")
	}
	// Replay: the violations must reproduce exactly, cycle for cycle.
	again, err := Run(art.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Violations, res.Violations) {
		t.Fatalf("replay diverged:\nfirst:  %v\nreplay: %v", res.Violations, again.Violations)
	}
	if again.Drained != res.Drained {
		t.Fatal("replay drain verdict diverged")
	}
}

// TestReplayArtifact reruns the artifact named by HARNESS_REPLAY — the
// one-line repro command written into every artifact lands here.
func TestReplayArtifact(t *testing.T) {
	path := os.Getenv(ReplayEnv)
	if path == "" {
		t.Skipf("set %s=<scenario.json> to replay a failure artifact", ReplayEnv)
	}
	art, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("replaying %s", art.Scenario)
	res, err := Run(art.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		t.Errorf("violation: %v", v)
	}
	if !res.Drained {
		t.Errorf("drain incomplete: %d injected, %d ejected", res.Injected, res.Ejected)
	}
	if !res.Failed() {
		t.Logf("artifact no longer reproduces (fixed?): %s", res.Summary())
	}
}

func TestBaselineDerivation(t *testing.T) {
	t.Parallel()
	sc := Scenario{Topology: "mesh:4x4", Routing: "min_adaptive", Scheme: "spin", VCsPerVNet: 1, Seed: 3, TDD: 16}
	b := sc.Baseline()
	if b.Routing != "escape_vc" || b.Scheme != "" || b.VCsPerVNet != 2 || b.TDD != 0 {
		t.Fatalf("bad baseline: %+v", b)
	}
	if b.Topology != sc.Topology || b.Seed != sc.Seed {
		t.Fatal("baseline must keep topology and seed")
	}
}

func TestCompareDeliveriesFlagsDivergence(t *testing.T) {
	t.Parallel()
	a := &Result{Delivered: []Delivery{{ID: 1, Src: 0, Dst: 3, Length: 5}, {ID: 2, Src: 1, Dst: 2, Length: 1}}}
	b := &Result{Delivered: []Delivery{{ID: 1, Src: 0, Dst: 3, Length: 5}}}
	if ms := compareDeliveries(a, b, 2); len(ms) == 0 {
		t.Fatal("missing baseline delivery not flagged")
	}
	c := &Result{Delivered: []Delivery{{ID: 1, Src: 0, Dst: 3, Length: 5}, {ID: 2, Src: 1, Dst: 2, Length: 3}}}
	if ms := compareDeliveries(a, c, 2); len(ms) == 0 {
		t.Fatal("tuple divergence not flagged")
	}
	if ms := compareDeliveries(a, a, 2); len(ms) != 0 {
		t.Fatalf("identical sets flagged: %v", ms)
	}
}

// TestArtifactEmbedsTraceTail pins the observability contract on
// failure artifacts: the written scenario-<key>.json carries the tail
// of the run's telemetry event stream, bounded by TraceTail, in
// chronological order, and it survives the JSON round trip.
func TestArtifactEmbedsTraceTail(t *testing.T) {
	t.Parallel()
	res, err := Run(brokenScenario())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatal("deliberately broken scenario did not fail")
	}
	if len(res.Trace) == 0 {
		t.Fatal("failed run recorded no telemetry events")
	}
	if len(res.Trace) > TraceTail {
		t.Fatalf("trace tail %d exceeds bound %d", len(res.Trace), TraceTail)
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Cycle < res.Trace[i-1].Cycle {
			t.Fatalf("trace not chronological at %d: %d after %d", i, res.Trace[i].Cycle, res.Trace[i-1].Cycle)
		}
	}
	path, err := WriteArtifact(t.TempDir(), NewArtifact(res))
	if err != nil {
		t.Fatal(err)
	}
	art, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(art.Trace, res.Trace) {
		t.Fatal("artifact trace did not round-trip")
	}
	// The raw file spells event kinds symbolically, not as ints.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(raw) {
		t.Fatal("artifact is not valid JSON")
	}
	for _, want := range []string{`"trace"`, `"kind"`, `"cycle"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("artifact missing %s", want)
		}
	}
}
