package harness

import (
	"fmt"

	spin "repro"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/traffic"
)

// Result is the outcome of one checked scenario execution.
type Result struct {
	Scenario   Scenario        `json:"scenario"`
	Violations []sim.Violation `json:"violations,omitempty"`
	// Drained reports whether every packet left the network within the
	// drain budget — the end-to-end liveness verdict.
	Drained  bool  `json:"drained"`
	Injected int64 `json:"injected"`
	Ejected  int64 `json:"ejected"`
	Spins    int64 `json:"spins"`
	// MaxDeadlockSpell is the longest continuous interval any VC spent
	// in the global oracle's deadlocked set — the run's empirical
	// recovery bound.
	MaxDeadlockSpell int64 `json:"max_deadlock_spell,omitempty"`
	// Delivered maps packet ID to its delivery tuple, in a form the
	// differential oracle can compare across configurations.
	Delivered []Delivery `json:"-"`
	// Trace is the tail of the run's telemetry event stream (flit-level
	// events excluded), embedded in failure artifacts so a triager sees
	// what the network was doing when the invariant broke.
	Trace []sim.Event `json:"-"`
	// Forensics is the flight recorder's first-failure snapshot (SPIN
	// event ring + frozen/spinning-VC chain), nil on clean runs. It is
	// written out as a forensics-<key>.json artifact by ReportFailure.
	Forensics *sim.ForensicsSnapshot `json:"-"`
}

// TraceTail is how many trailing telemetry events a checked run retains
// for its failure artifact.
const TraceTail = 256

// Delivery identifies one delivered packet, indexed by injection order
// (packet IDs are assigned sequentially at injection).
type Delivery struct {
	ID     uint64
	Src    int
	Dst    int
	Length int
	VNet   int
}

// Failed reports whether the run violated any invariant, including the
// drain liveness check.
func (r *Result) Failed() bool { return len(r.Violations) > 0 || !r.Drained }

// Summary is a one-line verdict for logs and artifacts.
func (r *Result) Summary() string {
	if !r.Failed() {
		return fmt.Sprintf("ok: %d packets, %d spins, max deadlock spell %d", r.Ejected, r.Spins, r.MaxDeadlockSpell)
	}
	s := fmt.Sprintf("%d violation(s)", len(r.Violations))
	if !r.Drained {
		s += fmt.Sprintf(", drain incomplete (%d injected, %d ejected)", r.Injected, r.Ejected)
	}
	if len(r.Violations) > 0 {
		s += ": " + r.Violations[0].String()
	}
	return s
}

// CheckOptions derives the invariant-checker configuration for the
// scenario. The recovery bound is the harness's liveness contract: SPIN
// must clear any oracle-visible deadlock within the time for detection
// (tDD stretched by up to 8x backoff) plus a few probe/move round trips
// around the longest possible loop; schemeless scenarios are generated
// deadlock-free, so any persistent oracle deadlock at all is a bug and
// the bound is a small constant.
func (sc Scenario) CheckOptions(routers int) sim.CheckOptions {
	opt := sim.CheckOptions{OracleEvery: 16}
	tdd := sc.TDD
	if tdd == 0 {
		tdd = 128 // the paper's default, applied when the scenario doesn't override
	}
	if sc.Scheme == "spin" {
		// Detection: priority rotation visits every router within
		// EpochFactor*tDD*routers/... — in practice a few backoff-
		// stretched detection intervals; recovery: probe+move+spin
		// traverse the loop (<= 2*routers hops) a handful of times, and
		// contended recoveries restart after kill_moves. The constant
		// is calibrated against the harness corpus (see
		// TestSpinRecoveryBoundRegression) with ~3x headroom.
		opt.RecoveryBound = 40*tdd + 30*int64(routers)
	} else {
		// No recovery scheme: the routing itself must be deadlock-free,
		// so the oracle may never see a deadlock persist.
		opt.RecoveryBound = 256
	}
	return opt
}

// Run executes the scenario with the invariant checker attached: the
// traffic phase, then a full drain. Any checker violation, plus a drain
// failure, lands in the result. The run is deterministic in the
// scenario's seed.
func Run(sc Scenario) (*Result, error) {
	s, err := sc.Sim()
	if err != nil {
		return nil, err
	}
	return runChecked(sc, s)
}

// runChecked drives a built simulation through the checked traffic+drain
// protocol. Callers may have replaced the traffic generator (trace
// replay, recording) before handing the simulation over.
func runChecked(sc Scenario, s *spin.Simulation) (*Result, error) {
	net := s.Network()
	checker := net.AttachChecker(sc.CheckOptions(net.NumRouters()))
	rec := telemetry.NewRecorder(TraceTail)
	net.AttachTelemetry(sim.TelemetryOptions{Probe: rec, Recorder: sim.NewFlightRecorder(FlightRecorderCap)})
	res := &Result{Scenario: sc}
	net.SetEjectHook(func(p *sim.Packet) {
		res.Delivered = append(res.Delivered, Delivery{ID: p.ID, Src: p.Src, Dst: p.Dst, Length: p.Length, VNet: p.VNet})
	})
	s.Run(sc.Cycles)
	res.Drained = s.Drain(sc.drainBudget())
	res.Violations = checker.Violations()
	if wt, ok := net.Config().Traffic.(sim.WindowedTraffic); ok {
		// Zero in-window residue after drain: every request the closed
		// loop issued was retired by its reply.
		if left := wt.InWindow(); res.Drained && left != 0 {
			res.Violations = append(res.Violations, sim.Violation{
				Rule:   sim.RuleWindow,
				Cycle:  net.Now(),
				Detail: fmt.Sprintf("drain completed with %d requests still in window", left),
			})
		}
		if err := wt.AuditWindows(); err != nil {
			res.Violations = append(res.Violations, sim.Violation{
				Rule:   sim.RuleWindow,
				Cycle:  net.Now(),
				Detail: err.Error(),
			})
		}
	}
	if sr, ok := net.Config().Traffic.(*traffic.StreamReplay); ok {
		if err := sr.Err(); err != nil {
			return nil, fmt.Errorf("harness: trace stream: %w", err)
		}
	}
	// The checker snapshots the flight recorder at its first violation;
	// an incomplete drain is a liveness failure the checker never sees,
	// so capture here (no-op when a checker snapshot already exists).
	if !res.Drained {
		net.CaptureForensics("drain_incomplete")
	}
	res.Forensics = net.FlightRecorder().Snapshot()
	res.Trace = rec.Events()
	res.Injected = net.Stats().Injected
	res.Ejected = net.Stats().Ejected
	res.Spins = net.Stats().Spins
	res.MaxDeadlockSpell = checker.MaxDeadlockSpell()
	return res, nil
}
