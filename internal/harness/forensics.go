package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	spin "repro"
	"repro/internal/cdg"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Forensics is the deadlock flight-recorder artifact: the scenario, the
// simulator's ForensicsSnapshot (SPIN event ring + frozen/spinning-VC
// chain at the moment the first invariant fired), and the static CDG cut
// of the scenario's routing function — together, the dynamic and static
// views of the same failure. It is written as forensics-<key>.json next
// to the scenario artifact and replayed with `spinsim -replay-forensics`.
type Forensics struct {
	Schema   string   `json:"schema"`
	Scenario Scenario `json:"scenario"`
	// Summary is the failed run's one-line verdict.
	Summary    string          `json:"summary"`
	Violations []sim.Violation `json:"violations,omitempty"`
	Notes      []string        `json:"notes,omitempty"`
	// Snapshot is the flight recorder's dump: the retained SPIN protocol
	// event tail plus the VC freeze/spin chain at failure time.
	Snapshot *sim.ForensicsSnapshot `json:"snapshot,omitempty"`
	// CDG is the static channel-dependency cut for the scenario's
	// (topology, routing) pair — which cycles the recovery scheme was
	// responsible for breaking. Nil when the routing has no static model.
	CDG *CDGCut `json:"cdg,omitempty"`
	// Repro is the one-line command that re-drives this artifact through
	// the harness.
	Repro string `json:"repro"`
}

// ForensicsSchema versions the artifact encoding.
const ForensicsSchema = "spin-forensics-v1"

// FlightRecorderCap is the event-ring capacity checked harness runs
// attach (the SPIN protocol event tail retained for forensics).
const FlightRecorderCap = 1024

// cdgCutMaxChannels caps how many channels of the largest cycle are
// embedded in the artifact; big tori have cycles spanning thousands of
// channels and the cut is a diagnostic, not a proof transcript.
const cdgCutMaxChannels = 64

// CDGCut is a compact static summary of the scenario's channel
// dependency graph (Dally & Seitz): the cycle census plus the concrete
// channels of the largest cyclic component.
type CDGCut struct {
	Summary      string `json:"summary"`
	Channels     int    `json:"channels"`
	Edges        int    `json:"edges"`
	Cycles       int    `json:"cycles"`
	LargestCycle int    `json:"largest_cycle,omitempty"`
	// LargestCycleChannels lists (up to cdgCutMaxChannels of) the largest
	// cyclic component's channels with their link endpoints resolved.
	LargestCycleChannels []CDGChannel `json:"largest_cycle_channels,omitempty"`
}

// CDGChannel is one CDG node with its directed link spelled out.
type CDGChannel struct {
	Link    int `json:"link"`
	VC      int `json:"vc"`
	Src     int `json:"src"`
	SrcPort int `json:"src_port"`
	Dst     int `json:"dst"`
	DstPort int `json:"dst_port"`
}

// cdgDep maps the scenario's routing spec to its static dependency
// function, mirroring cmd/spincheck's table. Nil (without error) means
// the routing has no static CDG model — the cut is simply omitted.
func cdgDep(name string, topo topology.Topology, vcs int) cdg.DependencyFunc {
	mesh, isMesh := topo.(*topology.Mesh)
	dfly, isDfly := topo.(*topology.Dragonfly)
	switch name {
	case "xy":
		if isMesh {
			return cdg.XYDep(mesh)
		}
	case "westfirst":
		if isMesh {
			return cdg.WestFirstDep(mesh)
		}
	case "min_adaptive", "", "favors_min", "favors_nmin":
		return cdg.MinAdaptiveDep(topo)
	case "escape_vc":
		if isMesh {
			return cdg.EscapeDep(mesh, vcs)
		}
	case "dfly_min_ladder", "ugal_ladder":
		if isDfly {
			return cdg.DflyLadderDep(dfly, vcs)
		}
	case "dfly_min", "ugal_spin":
		if isDfly {
			return cdg.DflyFreeDep(dfly)
		}
	}
	return nil
}

// BuildCDGCut computes the static CDG cut for the scenario, best-effort:
// nil when the topology fails to build or the routing has no static
// model. It never fails a forensics write.
func BuildCDGCut(sc Scenario) *CDGCut {
	topo, err := spin.BuildTopology(sc.Topology, sc.Seed)
	if err != nil {
		return nil
	}
	vcs := sc.VCsPerVNet
	if vcs == 0 {
		vcs = 1
	}
	dep := cdgDep(sc.Routing, topo, vcs)
	if dep == nil {
		return nil
	}
	g := cdg.Build(topo, vcs, dep)
	cut := &CDGCut{
		Summary:  g.Describe(),
		Channels: g.NumChannels(),
		Edges:    g.NumEdges(),
	}
	cycles := g.Cycles()
	cut.Cycles = len(cycles)
	var largest []cdg.Channel
	for _, c := range cycles {
		if len(c) > len(largest) {
			largest = c
		}
	}
	cut.LargestCycle = len(largest)
	links := topo.Links()
	if len(largest) > cdgCutMaxChannels {
		largest = largest[:cdgCutMaxChannels]
	}
	for _, ch := range largest {
		l := links[ch.Link]
		cut.LargestCycleChannels = append(cut.LargestCycleChannels, CDGChannel{
			Link: ch.Link, VC: ch.VC,
			Src: l.Src, SrcPort: l.SrcPort, Dst: l.Dst, DstPort: l.DstPort,
		})
	}
	return cut
}

// NewForensics assembles the forensics artifact from a failed run.
func NewForensics(res *Result) Forensics {
	f := Forensics{
		Schema:     ForensicsSchema,
		Scenario:   res.Scenario,
		Summary:    res.Summary(),
		Violations: res.Violations,
		Snapshot:   res.Forensics,
		CDG:        BuildCDGCut(res.Scenario),
	}
	if !res.Drained {
		f.Notes = append(f.Notes, fmt.Sprintf("drain incomplete: %d injected, %d ejected", res.Injected, res.Ejected))
	}
	return f
}

// WriteForensics persists the artifact as <dir>/forensics-<key>.json
// (creating dir) and fills in its repro command. It returns the path.
func WriteForensics(dir string, f Forensics) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "forensics-"+f.Scenario.Key()+".json")
	f.Repro = "spinsim -replay-forensics " + path
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadForensics reads an artifact written by WriteForensics.
func LoadForensics(path string) (Forensics, error) {
	var f Forensics
	b, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(b, &f); err != nil {
		return f, fmt.Errorf("harness: bad forensics artifact %s: %w", path, err)
	}
	if f.Schema != "" && f.Schema != ForensicsSchema {
		return f, fmt.Errorf("harness: forensics artifact %s has schema %q, want %s", path, f.Schema, ForensicsSchema)
	}
	return f, nil
}

// ReplayForensics re-drives the artifact's scenario through the checked
// harness and reports whether the failure reproduced (scenarios are
// deterministic in their seed, so a faithful artifact reproduces
// exactly). The fresh result carries its own new snapshot for
// comparison.
func ReplayForensics(f Forensics) (*Result, bool, error) {
	res, err := Run(f.Scenario)
	if err != nil {
		return nil, false, err
	}
	return res, res.Failed(), nil
}
