package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/sim"
)

// ReplayEnv is the environment variable TestReplayArtifact reads: point
// it at a scenario.json artifact and run the test to reproduce the
// failure deterministically.
const ReplayEnv = "HARNESS_REPLAY"

// Artifact is the replayable record of a failed scenario: everything
// needed to rerun the exact configuration plus what was observed. It is
// written as scenario-<key>.json next to a one-line repro command.
type Artifact struct {
	Scenario   Scenario        `json:"scenario"`
	Violations []sim.Violation `json:"violations,omitempty"`
	// Notes carries non-checker findings: drain failures, differential
	// delivery mismatches.
	Notes []string `json:"notes,omitempty"`
	// Trace is the tail of the run's telemetry event stream (the last
	// TraceTail non-flit events), so the artifact shows what the network
	// was doing when it failed — which VCs froze, which SMs were in
	// flight, where the oracle fired — without rerunning anything.
	Trace []sim.Event `json:"trace,omitempty"`
	// Repro is the one-line command that reruns this artifact.
	Repro string `json:"repro"`
}

// NewArtifact assembles an artifact from a failed run.
func NewArtifact(res *Result) Artifact {
	art := Artifact{Scenario: res.Scenario, Violations: res.Violations, Trace: res.Trace}
	if !res.Drained {
		art.Notes = append(art.Notes, fmt.Sprintf("drain incomplete: %d injected, %d ejected", res.Injected, res.Ejected))
	}
	return art
}

// WriteArtifact persists the artifact as <dir>/scenario-<key>.json
// (creating dir) and fills in its repro command. It returns the path.
func WriteArtifact(dir string, art Artifact) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, "scenario-"+art.Scenario.Key()+".json")
	art.Repro = fmt.Sprintf("%s=%s go test -run 'TestReplayArtifact' ./internal/harness", ReplayEnv, path)
	b, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadArtifact reads an artifact written by WriteArtifact.
func LoadArtifact(path string) (Artifact, error) {
	var art Artifact
	b, err := os.ReadFile(path)
	if err != nil {
		return art, err
	}
	if err := json.Unmarshal(b, &art); err != nil {
		return art, fmt.Errorf("harness: bad artifact %s: %w", path, err)
	}
	return art, nil
}

// ReportFailure writes the artifact for a failed result and returns a
// human-readable message containing the path and repro command. With an
// empty dir it only formats the message.
func ReportFailure(dir string, res *Result) string {
	art := NewArtifact(res)
	msg := fmt.Sprintf("scenario %s failed: %s", res.Scenario, res.Summary())
	if dir == "" {
		return msg
	}
	path, err := WriteArtifact(dir, art)
	if err != nil {
		return fmt.Sprintf("%s (artifact write failed: %v)", msg, err)
	}
	msg = fmt.Sprintf("%s\nartifact: %s\nreplay:   %s=%s go test -run 'TestReplayArtifact' ./internal/harness",
		msg, path, ReplayEnv, path)
	if res.Forensics != nil {
		fpath, err := WriteForensics(dir, NewForensics(res))
		if err != nil {
			return fmt.Sprintf("%s\n(forensics write failed: %v)", msg, err)
		}
		msg = fmt.Sprintf("%s\nforensics: %s\nreplay:    spinsim -replay-forensics %s", msg, fpath, fpath)
	}
	return msg
}
