package harness

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/traffic"
)

// This file is the request ⇄ Scenario round-trip used by the serving
// subsystem (internal/serve, cmd/spind): a scenario arriving as JSON is
// decoded strictly, validated, normalized into a canonical form, and
// re-encoded into canonical bytes. Two requests that describe the same
// simulation — whether they spell defaults out or omit them — produce
// identical canonical bytes, and therefore the same content-addressed
// cache key.

// DecodeScenario reads one scenario from JSON, rejecting unknown fields
// so a typoed knob ("vc_per_vnet") fails loudly instead of silently
// simulating something else.
func DecodeScenario(r io.Reader) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("harness: decode scenario: %w", err)
	}
	// A second document in the body is almost certainly a client bug.
	if dec.More() {
		return Scenario{}, fmt.Errorf("harness: trailing data after scenario")
	}
	return sc, nil
}

// Validate reports whether the scenario is a runnable request. It checks
// request-shape errors only; spec-string errors (an unknown topology or
// routing name) surface from spin.New when the simulation is built.
func (sc Scenario) Validate() error {
	switch {
	case sc.Topology == "":
		return fmt.Errorf("harness: scenario needs a topology")
	case sc.Traffic == "" && len(sc.Injections) == 0 && sc.TraceB64 == "":
		return fmt.Errorf("harness: scenario needs a traffic pattern, injections, or a trace")
	case sc.Traffic != "" && len(sc.Injections) > 0:
		return fmt.Errorf("harness: traffic %q and explicit injections are mutually exclusive", sc.Traffic)
	case sc.TraceB64 != "" && (sc.Traffic != "" || len(sc.Injections) > 0 || sc.Workload != nil):
		return fmt.Errorf("harness: trace_b64 is mutually exclusive with traffic, injections, and workload")
	case sc.Workload != nil && sc.Traffic == "":
		return fmt.Errorf("harness: workload shaping needs a traffic pattern")
	case sc.Workload != nil && len(sc.Injections) > 0:
		return fmt.Errorf("harness: workload shaping and explicit injections are mutually exclusive")
	case sc.Traffic != "" && sc.Rate <= 0:
		return fmt.Errorf("harness: rate must be > 0, got %g", sc.Rate)
	case sc.Traffic == "" && sc.Rate != 0:
		return fmt.Errorf("harness: rate %g is meaningless without a traffic pattern", sc.Rate)
	case sc.Cycles <= 0:
		return fmt.Errorf("harness: cycles must be > 0, got %d", sc.Cycles)
	case sc.DataFrac < 0 || sc.DataFrac > 1:
		return fmt.Errorf("harness: data_frac must be in [0,1], got %g", sc.DataFrac)
	case sc.VNets < 0 || sc.VCsPerVNet < 0 || sc.VCDepth < 0:
		return fmt.Errorf("harness: vnets/vcs_per_vnet/vc_depth must be >= 0")
	case sc.TDD < 0:
		return fmt.Errorf("harness: tdd must be >= 0, got %d", sc.TDD)
	case sc.Warmup < 0:
		return fmt.Errorf("harness: warmup must be >= 0, got %d", sc.Warmup)
	case sc.Warmup >= sc.Cycles:
		return fmt.Errorf("harness: warmup %d leaves no measurement window in %d cycles", sc.Warmup, sc.Cycles)
	case sc.DrainCycles < 0:
		return fmt.Errorf("harness: drain_cycles must be >= 0, got %d", sc.DrainCycles)
	}
	switch sc.Mutation {
	case "", "none", "no_probe":
	default:
		return fmt.Errorf("harness: unknown mutation %q (want none or no_probe)", sc.Mutation)
	}
	if sc.Workload != nil {
		if err := sc.Workload.Validate(); err != nil {
			return fmt.Errorf("harness: %w", err)
		}
		if sc.Workload.Mode == "closed" && sc.VNets == 1 {
			return fmt.Errorf("harness: closed-loop workload needs vnets >= 2 (requests and replies ride separate classes), got 1")
		}
	}
	if sc.TraceB64 != "" {
		raw, err := base64.StdEncoding.DecodeString(sc.TraceB64)
		if err != nil {
			return fmt.Errorf("harness: trace_b64 is not valid base64: %w", err)
		}
		// Full structural validation (magic, chunk CRCs, field bounds)
		// happens against the decoded stream; rejecting a corrupt trace
		// here keeps it out of the content-addressed cache entirely.
		if _, err := traffic.DecodeTrace(bytes.NewReader(raw)); err != nil {
			return fmt.Errorf("harness: trace_b64: %w", err)
		}
	}
	for i, inj := range sc.Injections {
		switch {
		case inj.Cycle < 0:
			return fmt.Errorf("harness: injection %d: negative cycle", i)
		case inj.Src < 0 || inj.Dst < 0:
			return fmt.Errorf("harness: injection %d: negative terminal", i)
		case inj.Src == inj.Dst:
			return fmt.Errorf("harness: injection %d: self-destined at %d", i, inj.Src)
		case inj.Length <= 0:
			return fmt.Errorf("harness: injection %d: length must be > 0, got %d", i, inj.Length)
		case inj.VNet < 0:
			return fmt.Errorf("harness: injection %d: negative vnet", i)
		}
	}
	return nil
}

// Normalized fills every zero-valued knob with the default the simulator
// would apply anyway, and clears knobs the configuration cannot use, so
// semantically identical scenarios become structurally identical. The
// rules mirror spin.New / sim.NewNetwork / traffic.Synthetic defaulting
// exactly; a normalized scenario simulates bit-identically to its
// original.
func (sc Scenario) Normalized() Scenario {
	if sc.Routing == "" {
		sc.Routing = "min_adaptive" // spin.BuildRouting's "" alias
	}
	if sc.Scheme == "none" {
		sc.Scheme = "" // spin.New treats "none" and "" alike
	}
	if sc.Workload != nil {
		// Normalize the workload block the same way Build does, and drop
		// a block that is all defaults — it shapes nothing, so the plain
		// synthetic scenario must hash identically.
		w := *sc.Workload
		w.Normalize()
		if w.IsZero() {
			sc.Workload = nil
		} else {
			sc.Workload = &w
		}
	}
	if sc.closedLoop() && sc.VNets == 0 {
		sc.VNets = 2 // reply class; mirrors Scenario.Config
	}
	if sc.VNets == 0 {
		sc.VNets = 1
	}
	if sc.VCsPerVNet == 0 {
		sc.VCsPerVNet = 1
	}
	if sc.VCDepth == 0 {
		sc.VCDepth = 5
	}
	if sc.Traffic == "" {
		// Explicit injections or a replayed trace: no synthetic generator
		// exists, so its knobs are cleared instead of defaulted.
		sc.Rate, sc.DataFrac = 0, 0
	} else if sc.closedLoop() {
		// Closed-loop clients fix packet lengths via req_len/resp_len;
		// the open-loop long-packet mix knob is unused.
		sc.DataFrac = 0
	} else if sc.DataFrac == 0 {
		sc.DataFrac = 0.5 // traffic.Synthetic's default long-packet mix
	}
	if sc.Mutation == "none" {
		sc.Mutation = "" // the faithful protocol, spelled out
	}
	switch sc.Scheme {
	case "spin", "static_bubble":
		if sc.TDD == 0 {
			sc.TDD = 128 // the paper's detection threshold
		}
	default:
		sc.TDD = 0 // no detection timeout exists to configure
	}
	return sc
}

// Canonical returns the scenario's canonical encoding: the JSON of its
// normalized form. Struct-field order makes the bytes deterministic, so
// the encoding is a stable content-address input.
func (sc Scenario) Canonical() []byte {
	b, err := json.Marshal(sc.Normalized())
	if err != nil {
		// Scenario is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("harness: canonical encoding failed: %v", err))
	}
	return b
}

// CanonicalEqual reports whether two scenarios describe the same
// simulation.
func CanonicalEqual(a, b Scenario) bool {
	return bytes.Equal(a.Canonical(), b.Canonical())
}
