package harness

import "testing"

// FuzzScenario is the native fuzzing entry point: the fuzzer picks raw
// selector values, FromBits clamps them into a valid scenario, and the
// scenario runs under the full invariant checker plus the drain
// liveness check. Any violation is a crash for the fuzzer to minimise;
// the failing scenario is also written as a replay artifact.
//
// Run it with: go test -fuzz FuzzScenario -fuzztime 30s ./internal/harness
func FuzzScenario(f *testing.F) {
	// One representative per topology class, cyclic and acyclic routing,
	// plus the spin-heavy saturation corner.
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint16(20), int64(1), uint16(300))  // 3x3 mesh, xy
	f.Add(uint8(1), uint8(3), uint8(1), uint8(0), uint8(0), uint16(50), int64(7), uint16(400))  // 4x4 mesh, min_adaptive+spin, saturated
	f.Add(uint8(4), uint8(2), uint8(4), uint8(1), uint8(1), uint16(35), int64(3), uint16(350))  // torus, cyclic+spin
	f.Add(uint8(5), uint8(1), uint8(0), uint8(1), uint8(0), uint16(30), int64(5), uint16(200))  // dragonfly, cyclic+spin
	f.Add(uint8(6), uint8(0), uint8(2), uint8(0), uint8(1), uint16(40), int64(11), uint16(250)) // jellyfish
	f.Add(uint8(7), uint8(1), uint8(1), uint8(2), uint8(0), uint16(45), int64(13), uint16(300)) // irregular mesh
	f.Fuzz(func(t *testing.T, topoSel, routeSel, patSel, vcs, vnets uint8, ratePct uint16, seed int64, cycles uint16) {
		sc := FromBits(topoSel, routeSel, patSel, vcs, vnets, ratePct, seed, cycles)
		res, err := Run(sc)
		if err != nil {
			// FromBits must be total over valid scenarios; a build error
			// here is a generator bug, not an uninteresting input.
			t.Fatalf("scenario %s failed to build: %v", sc, err)
		}
		if res.Failed() {
			t.Fatal(ReportFailure(artifactDir(), res))
		}
	})
}
