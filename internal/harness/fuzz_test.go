package harness

import "testing"

// FuzzScenario is the native fuzzing entry point: the fuzzer picks raw
// selector values, FromBits clamps them into a valid scenario, and the
// scenario runs under the full invariant checker plus the drain
// liveness check. Any violation is a crash for the fuzzer to minimise;
// the failing scenario is also written as a replay artifact.
//
// Run it with: go test -fuzz FuzzScenario -fuzztime 30s ./internal/harness
func FuzzScenario(f *testing.F) {
	// One representative per topology class, cyclic and acyclic routing,
	// plus the spin-heavy saturation corner.
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint16(20), int64(1), uint16(300))  // 3x3 mesh, xy
	f.Add(uint8(1), uint8(3), uint8(1), uint8(0), uint8(0), uint16(50), int64(7), uint16(400))  // 4x4 mesh, min_adaptive+spin, saturated
	f.Add(uint8(4), uint8(2), uint8(4), uint8(1), uint8(1), uint16(35), int64(3), uint16(350))  // torus, cyclic+spin
	f.Add(uint8(5), uint8(1), uint8(0), uint8(1), uint8(0), uint16(30), int64(5), uint16(200))  // dragonfly, cyclic+spin
	f.Add(uint8(6), uint8(0), uint8(2), uint8(0), uint8(1), uint16(40), int64(11), uint16(250)) // jellyfish
	f.Add(uint8(7), uint8(1), uint8(1), uint8(2), uint8(0), uint16(45), int64(13), uint16(300)) // irregular mesh
	f.Fuzz(func(t *testing.T, topoSel, routeSel, patSel, vcs, vnets uint8, ratePct uint16, seed int64, cycles uint16) {
		sc := FromBits(topoSel, routeSel, patSel, vcs, vnets, ratePct, seed, cycles)
		res, err := Run(sc)
		if err != nil {
			// FromBits must be total over valid scenarios; a build error
			// here is a generator bug, not an uninteresting input.
			t.Fatalf("scenario %s failed to build: %v", sc, err)
		}
		if res.Failed() {
			t.Fatal(ReportFailure(artifactDir(), res))
		}
	})
}

// FuzzWorkloadScenario is FuzzScenario with a shaped workload block
// layered on: closed-loop clients (window invariants active), bursty
// sources, or hotspot skew, chosen by the extra selector bytes.
//
// Run it with: go test -fuzz FuzzWorkloadScenario -fuzztime 30s ./internal/harness
func FuzzWorkloadScenario(f *testing.F) {
	f.Add(uint8(1), uint8(3), uint8(0), uint8(0), uint8(0), uint16(40), int64(7), uint16(300), uint8(0), uint8(3), uint8(4), uint8(8)) // closed loop on 4x4 mesh+spin
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint16(20), int64(1), uint16(250), uint8(1), uint8(8), uint8(16), uint8(0)) // bursty on 3x3 mesh, xy
	f.Add(uint8(4), uint8(2), uint8(4), uint8(1), uint8(1), uint16(30), int64(3), uint16(300), uint8(2), uint8(20), uint8(1), uint8(0)) // hotspot on torus+spin
	f.Fuzz(func(t *testing.T, topoSel, routeSel, patSel, vcs, vnets uint8, ratePct uint16, seed int64, cycles uint16, mode, wa, wb, wc uint8) {
		sc := WorkloadFromBits(FromBits(topoSel, routeSel, patSel, vcs, vnets, ratePct, seed, cycles), mode, wa, wb, wc)
		if err := sc.Validate(); err != nil {
			t.Fatalf("WorkloadFromBits must be total, got invalid %s: %v", sc, err)
		}
		res, err := Run(sc)
		if err != nil {
			t.Fatalf("scenario %s failed to build: %v", sc, err)
		}
		if res.Failed() {
			t.Fatal(ReportFailure(artifactDir(), res))
		}
	})
}
