// Package harness is the randomized-scenario correctness subsystem: it
// generates random valid simulator configurations, runs each one with
// the sim.InvariantChecker attached, cross-checks SPIN-enabled runs
// against the escape-VC baseline on an identical recorded workload (the
// differential oracle), and writes a replayable JSON artifact for every
// violation so failures reproduce deterministically.
//
// The entry points are Generate (random valid Scenario), Run (one
// checked execution), RunDifferential (SPIN vs escape-VC on the same
// trace), and FuzzScenario in fuzz_test.go (the native go test -fuzz
// driver over the same machinery).
package harness

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"hash/fnv"

	spin "repro"
	spinimpl "repro/internal/spin"
	"repro/internal/traffic"
	"repro/internal/workload"
)

// Scenario is a compact, serializable simulator configuration — the unit
// the harness generates, runs, and writes into failure artifacts. Fields
// mirror the top-level spin.Config spec strings so a scenario can be
// reproduced with cmd/spinsim flags verbatim.
type Scenario struct {
	// Topology, Routing, Scheme, Traffic are spin.Config spec strings
	// ("mesh:4x4", "min_adaptive", "spin", "tornado", ...).
	Topology string `json:"topology"`
	Routing  string `json:"routing"`
	Scheme   string `json:"scheme,omitempty"`
	Traffic  string `json:"traffic"`

	Rate     float64 `json:"rate"`
	DataFrac float64 `json:"data_frac,omitempty"`

	VNets      int `json:"vnets,omitempty"`
	VCsPerVNet int `json:"vcs_per_vnet,omitempty"`
	VCDepth    int `json:"vc_depth,omitempty"`

	Seed int64 `json:"seed"`
	TDD  int64 `json:"tdd,omitempty"`

	// Cycles is the traffic phase length; DrainCycles bounds the drain
	// that follows (0 = 20x Cycles).
	Cycles      int64 `json:"cycles"`
	DrainCycles int64 `json:"drain_cycles,omitempty"`

	// Warmup delays measurement start (spin.Config.Warmup). The checker
	// audits raw counters and ignores it; it exists for serving paths
	// (cmd/spind) where measurement windows matter.
	Warmup int64 `json:"warmup,omitempty"`

	// Injections, when non-empty, replaces the synthetic generator with
	// an exact packet-by-packet workload (traffic.Replay). Traffic must
	// be empty and Rate zero; the model checker's counterexample replays
	// (internal/mc, cmd/spinmc) are built on this.
	Injections []Injection `json:"injections,omitempty"`

	// Workload shapes the synthetic traffic beyond the plain Bernoulli
	// source: closed-loop finite-window clients, on/off bursts, hotspot
	// skew (see internal/workload.Spec). Requires Traffic; mutually
	// exclusive with Injections and TraceB64.
	Workload *workload.Spec `json:"workload,omitempty"`

	// TraceB64 carries a spintrace-v1 binary trace (base64, standard
	// encoding) replayed through traffic.StreamReplay. The bytes are part
	// of the canonical encoding, so the service cache key is content-
	// addressed over the trace itself. Mutually exclusive with Traffic,
	// Injections, and Workload; Rate must be zero.
	TraceB64 string `json:"trace_b64,omitempty"`
	// Mutation injects a deliberate protocol defect for counterexample
	// replay: "" (or "none") is the faithful protocol, "no_probe"
	// disables SPIN's detection/probe phase (spin.Config.SPIN.
	// DisableProbe), turning every true deadlock into a drain failure.
	Mutation string `json:"mutation,omitempty"`
}

// Injection is one exact packet injection of a replayed workload.
type Injection struct {
	Cycle  int64 `json:"cycle"`
	Src    int   `json:"src"`
	Dst    int   `json:"dst"`
	Length int   `json:"length"`
	VNet   int   `json:"vnet"`
}

// maxPktLen is the engine's packet-length cap (sim.Config.MaxPktLen
// default), the bound trace entries and workload packet lengths must
// respect.
const maxPktLen = 5

// closedLoop reports whether the scenario carries a closed-loop
// workload block.
func (sc Scenario) closedLoop() bool {
	return sc.Workload != nil && sc.Workload.Mode == "closed"
}

// Config translates the scenario into a top-level simulation config.
func (sc Scenario) Config() spin.Config {
	var impl spinimpl.Config
	if sc.Mutation == "no_probe" {
		impl.DisableProbe = true
	}
	if sc.closedLoop() && sc.VNets == 0 {
		// Closed-loop traffic needs a second vnet for the reply class;
		// Normalized applies the same default so canonical scenarios
		// simulate identically to shorthand ones.
		sc.VNets = 2
	}
	return spin.Config{
		SPIN:       impl,
		Topology:   sc.Topology,
		Routing:    sc.Routing,
		Scheme:     sc.Scheme,
		Traffic:    sc.Traffic,
		Rate:       sc.Rate,
		DataFrac:   sc.DataFrac,
		VNets:      sc.VNets,
		VCsPerVNet: sc.VCsPerVNet,
		VCDepth:    sc.VCDepth,
		Seed:       sc.Seed,
		TDD:        sc.TDD,
		Warmup:     sc.Warmup,
	}
}

// FromConfig lifts a top-level simulation config into a Scenario, so
// command-line runs (spinsim -check) share the harness's checker
// configuration and replay-artifact format. Warmup is dropped: it only
// gates measurement windows, never the raw counters the checker audits.
func FromConfig(cfg spin.Config, cycles int64) Scenario {
	return Scenario{
		Topology:   cfg.Topology,
		Routing:    cfg.Routing,
		Scheme:     cfg.Scheme,
		Traffic:    cfg.Traffic,
		Rate:       cfg.Rate,
		DataFrac:   cfg.DataFrac,
		VNets:      cfg.VNets,
		VCsPerVNet: cfg.VCsPerVNet,
		VCDepth:    cfg.VCDepth,
		Seed:       cfg.Seed,
		TDD:        cfg.TDD,
		Cycles:     cycles,
	}
}

// Sim builds the runnable simulation for the scenario, attaching the
// exact-injection, streamed-trace, or shaped-workload traffic when the
// scenario carries one.
func (sc Scenario) Sim() (*spin.Simulation, error) { return sc.SimShards(0) }

// SimShards is Sim with an explicit engine shard count — an execution
// knob, not part of the scenario (it never affects results or cache
// keys). The serving path uses it to run canonical scenarios on its
// configured shard budget.
func (sc Scenario) SimShards(shards int) (*spin.Simulation, error) {
	cfg := sc.Config()
	if shards > 0 {
		cfg.Shards = shards
	}
	s, err := spin.New(cfg)
	if err != nil {
		return nil, err
	}
	if len(sc.Injections) > 0 {
		tr := &traffic.Trace{Entries: make([]traffic.TraceEntry, len(sc.Injections))}
		for i, inj := range sc.Injections {
			tr.Entries[i] = traffic.TraceEntry{Cycle: inj.Cycle, Src: inj.Src, Dst: inj.Dst, Length: inj.Length, VNet: inj.VNet}
		}
		depth := sc.VCDepth
		if depth == 0 {
			depth = 5
		}
		if err := tr.Validate(s.Topology().NumTerminals(), max(1, sc.VNets), depth); err != nil {
			return nil, err
		}
		s.Network().SetTraffic(&traffic.Replay{Trace: tr})
	}
	if sc.TraceB64 != "" {
		raw, err := base64.StdEncoding.DecodeString(sc.TraceB64)
		if err != nil {
			return nil, fmt.Errorf("harness: trace_b64: %w", err)
		}
		tr, err := traffic.StreamTrace(bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		vnets := s.Network().Config().VNets
		s.Network().SetTraffic(traffic.NewStreamReplay(tr, s.Topology().NumTerminals(), vnets, maxPktLen))
	}
	if sc.Workload != nil {
		w := *sc.Workload
		w.Normalize()
		if !w.IsZero() {
			pat, err := traffic.ByName(sc.Traffic, s.Topology())
			if err != nil {
				return nil, err
			}
			vnets := s.Network().Config().VNets
			gen, err := workload.Build(w, pat, sc.Rate, sc.DataFrac, vnets, s.Topology().NumTerminals(), maxPktLen, sc.Seed)
			if err != nil {
				return nil, err
			}
			s.Network().SetTraffic(gen)
		}
	}
	return s, nil
}

// drainBudget is the post-traffic drain bound. The default is generous
// on purpose: a deeply oversaturated 1-VC configuration holds O(rate x
// cycles x terminals) flits in its injection queues and drains them at
// its (recovery-limited) saturation throughput, which can take hundreds
// of cycles per offered cycle. Drain returns the moment the network
// empties, so live runs never pay the full budget.
func (sc Scenario) drainBudget() int64 {
	if sc.DrainCycles > 0 {
		return sc.DrainCycles
	}
	return 250 * sc.Cycles
}

// String is a one-line human-readable summary, stable enough for subtest
// names.
func (sc Scenario) String() string {
	scheme := sc.Scheme
	if scheme == "" {
		scheme = "none"
	}
	return fmt.Sprintf("%s/%s/%s/%s@%.2f/vn%d-vc%d/seed%d",
		sc.Topology, sc.Routing, scheme, sc.Traffic, sc.Rate, sc.VNets, sc.VCsPerVNet, sc.Seed)
}

// Key is a short stable content hash, used for artifact filenames.
func (sc Scenario) Key() string {
	b, _ := json.Marshal(sc)
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}
