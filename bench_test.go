package spin_test

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation, plus the ablations called out in DESIGN.md. The
// figure benchmarks run the same sweeps as cmd/spinsweep at reduced scale
// and report the headline quantity of the figure through b.ReportMetric,
// so `go test -bench .` regenerates the whole evaluation.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	spin "repro"
	"repro/internal/exp"
	"repro/internal/runner"
	spinimpl "repro/internal/spin"
)

// benchOpts keeps benchmark sweeps fast while preserving shape. Sweeps
// run on the parallel runner at the default worker count (GOMAXPROCS);
// BenchmarkFig7Workers isolates the scaling behaviour.
func benchOpts() exp.Options {
	return exp.Options{Cycles: 4000, Warmup: 400, Small: true, Seed: 9}
}

// BenchmarkFig7Workers measures the sweep engine's scaling: the same
// figure at 1, 2, 4 and all-core worker counts. Results are identical
// across sub-benchmarks; only wall-clock should differ.
func BenchmarkFig7Workers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			o := benchOpts()
			o.Workers = workers
			for i := 0; i < b.N; i++ {
				figs, err := exp.Fig7(context.Background(), o)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(figs)), "patterns")
			}
		})
	}
}

// BenchmarkRunnerOverhead measures the job engine's fixed cost with
// trivial jobs — the floor under every parallel sweep.
func BenchmarkRunnerOverhead(b *testing.B) {
	jobs := make([]runner.Job[int64], 256)
	for i := range jobs {
		jobs[i] = runner.Job[int64]{
			Key: fmt.Sprintf("noop/%d", i),
			Run: func(_ context.Context, seed int64) (int64, error) { return seed, nil },
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Run(context.Background(), runner.Options{Seed: 9}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := exp.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if exp.Table2() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if exp.Table3() == nil {
			b.Fatal("nil table")
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig3(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		min := 0.0
		for _, e := range res.Entries {
			if e.MinRate > 0 && (min == 0 || e.MinRate < min) {
				min = e.MinRate
			}
		}
		b.ReportMetric(min, "min_deadlock_rate")
	}
}

func BenchmarkFig6(b *testing.B) {
	o := benchOpts()
	o.Cycles = 2500
	for i := 0; i < b.N; i++ {
		figs, err := exp.Fig6(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(figs)), "patterns")
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		figs, err := exp.Fig7(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(figs)), "patterns")
	}
}

func BenchmarkFig8a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig8a(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.GeoMean(), "edp_geomean_vs_escape")
	}
}

func BenchmarkFig8b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig8b(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Entries[2].SMAll, "sm_util_high_load")
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Fig9(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var spins int64
		for _, e := range res.Entries {
			spins += e.Spins
		}
		b.ReportMetric(float64(spins), "total_spins")
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := exp.Fig10()
		for _, e := range res.Entries {
			if e.Design == "spin" {
				b.ReportMetric(e.Normalized-1, "spin_area_overhead")
			}
		}
	}
}

func BenchmarkCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := exp.Costs()
		b.ReportMetric(c.Rows[0].AreaSave1v3, "mesh_area_save_1v3")
	}
}

// ablationRun measures delivered packets and spins for a SPIN variant
// under a fixed adversarial load.
func ablationRun(b *testing.B, sc spinimpl.Config) (float64, float64) {
	b.Helper()
	s, err := spin.New(spin.Config{
		Topology:   "mesh:4x4",
		Routing:    "min_adaptive",
		Scheme:     "spin",
		VCsPerVNet: 1,
		Traffic:    "bit_complement",
		Rate:       0.5,
		Warmup:     500,
		Seed:       13,
		SPIN:       sc,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Run(6000)
	return s.AvgLatency(), float64(s.Spins())
}

// BenchmarkAblationTDD sweeps the detection threshold: small tDD detects
// fast but probes more; large tDD stalls recovery (DESIGN.md ablation).
func BenchmarkAblationTDD(b *testing.B) {
	for _, tdd := range []int64{32, 128, 512} {
		b.Run(benchName("tdd", tdd), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lat, spins := ablationRun(b, spinimpl.Config{TDD: tdd})
				b.ReportMetric(lat, "avg_latency")
				b.ReportMetric(spins, "spins")
			}
		})
	}
}

// BenchmarkAblationEpoch sweeps the rotating-priority epoch factor.
func BenchmarkAblationEpoch(b *testing.B) {
	for _, ef := range []int64{2, 4, 8} {
		b.Run(benchName("epoch", ef), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lat, spins := ablationRun(b, spinimpl.Config{TDD: 64, EpochFactor: ef})
				b.ReportMetric(lat, "avg_latency")
				b.ReportMetric(spins, "spins")
			}
		})
	}
}

// BenchmarkAblationProbeMove compares the multi-spin optimisation on/off.
func BenchmarkAblationProbeMove(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "probe_move_on"
		if disable {
			name = "probe_move_off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lat, spins := ablationRun(b, spinimpl.Config{TDD: 64, DisableProbeMove: disable})
				b.ReportMetric(lat, "avg_latency")
				b.ReportMetric(spins, "spins")
			}
		})
	}
}

// BenchmarkAblationProbeFork compares probe forking on/off in a multi-VC
// configuration where inter-dependent cycles require it.
func BenchmarkAblationProbeFork(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "fork_on"
		if disable {
			name = "fork_off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := spin.New(spin.Config{
					Topology:   "mesh:4x4",
					Routing:    "min_adaptive",
					Scheme:     "spin",
					VCsPerVNet: 3,
					Traffic:    "bit_complement",
					Rate:       0.5,
					Warmup:     500,
					Seed:       13,
					SPIN:       spinimpl.Config{TDD: 64, DisableProbeFork: disable},
				})
				if err != nil {
					b.Fatal(err)
				}
				s.Run(6000)
				b.ReportMetric(float64(s.Stats().Counter("recoveries")), "recoveries")
				b.ReportMetric(float64(s.Stats().Ejected), "delivered")
			}
		})
	}
}

// BenchmarkEngineMeshCycles measures raw simulator speed: router-cycles
// per second on a busy 8x8 mesh.
func BenchmarkEngineMeshCycles(b *testing.B) {
	s, err := spin.New(spin.Config{
		Topology:   "mesh:8x8",
		Routing:    "min_adaptive",
		Scheme:     "spin",
		VCsPerVNet: 3,
		Traffic:    "uniform_random",
		Rate:       0.3,
		Seed:       17,
	})
	if err != nil {
		b.Fatal(err)
	}
	s.Run(1000) // warm the network
	b.ResetTimer()
	s.Run(int64(b.N))
	b.ReportMetric(float64(64), "routers")
}

// BenchmarkSpinRecoveryLatency measures the time from deadlock formation
// to resolution for the canonical square ring.
func BenchmarkSpinRecoveryLatency(b *testing.B) {
	total := int64(0)
	runs := 0
	for i := 0; i < b.N; i++ {
		s, err := spin.New(spin.Config{
			Topology:   "mesh:4x4",
			Routing:    "min_adaptive",
			Scheme:     "spin",
			VCsPerVNet: 1,
			Traffic:    "transpose",
			Rate:       0.5,
			Seed:       int64(i + 1),
			TDD:        64,
		})
		if err != nil {
			b.Fatal(err)
		}
		s.Run(4000)
		if sp := s.Spins(); sp > 0 {
			total += sp
			runs++
		}
	}
	if runs > 0 {
		b.ReportMetric(float64(total)/float64(runs), "spins_per_run")
	}
}

func benchName(prefix string, v int64) string {
	return fmt.Sprintf("%s_%d", prefix, v)
}

// BenchmarkExtensionTorus compares DOR+bubble flow control against
// MinAdaptive+SPIN on a torus (extension experiment).
func BenchmarkExtensionTorus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Torus(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SPIN[0], "spin_lowload_latency")
	}
}

// BenchmarkExtensionDeflection quantifies Table I's deflection row.
func BenchmarkExtensionDeflection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Deflection(context.Background(), benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.AvgDeflect[len(res.AvgDeflect)-1], "deflects_per_flit_high_load")
	}
}
