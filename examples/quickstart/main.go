// Quickstart: an 8x8 mesh running the paper's FAvORS-Min routing with a
// single virtual channel — a configuration that is only deadlock-free
// because SPIN recovers from the cycles fully-adaptive routing creates.
package main

import (
	"fmt"
	"log"

	spin "repro"
)

func main() {
	sim, err := spin.New(spin.Config{
		Topology:   "mesh:8x8",
		Routing:    "favors_min",
		Scheme:     "spin",
		VNets:      3, // directory-protocol message classes, as in the paper
		VCsPerVNet: 1,
		Traffic:    "uniform_random",
		Rate:       0.15,
		Warmup:     5000,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(50000)

	st := sim.Stats()
	fmt.Printf("delivered %d packets\n", st.Ejected)
	fmt.Printf("average latency: %.1f cycles\n", sim.AvgLatency())
	fmt.Printf("throughput: %.3f flits/node/cycle\n", sim.Throughput())
	fmt.Printf("deadlocks recovered by SPIN: %d recoveries, %d spins\n",
		st.Counter("recoveries"), sim.Spins())

	// Liveness check: stop traffic and drain every queued packet.
	if sim.Drain(500000) {
		fmt.Println("drain complete: network is live")
	} else {
		fmt.Println("drain incomplete!")
	}
}
