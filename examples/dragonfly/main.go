// Dragonfly: compares the commercial-style UGAL + Dally VC ladder (3 VCs,
// VC restricted per global hop) against UGAL with free VC use under SPIN
// on an HPC-scale dragonfly — the paper's Fig. 6 setup. The SPIN
// configuration removes the VC-use restriction, which shows up as higher
// saturation throughput on adversarial patterns.
package main

import (
	"fmt"
	"log"

	spin "repro"
)

func main() {
	// The 1024-node system of the paper; swap for "dragonfly:4,4,4,16" for
	// a quicker run. The rates cover the region below saturation where the
	// ladder's VC-use restriction costs it latency (the paper's Fig. 6
	// argument); past saturation all designs congest.
	const topo = "dragonfly1024"
	const pattern = "tornado"
	rates := []float64{0.03, 0.06, 0.09}

	configs := []struct {
		label, routing, scheme string
		vcs                    int
	}{
		{"UGAL + Dally ladder (3VC)", "ugal_ladder", "", 3},
		{"UGAL + SPIN free VCs (3VC)", "ugal_spin", "spin", 3},
		{"FAvORS-NMin + SPIN (1VC)", "favors_nmin", "spin", 1},
	}
	for _, c := range configs {
		fmt.Printf("%s on %s, %s traffic:\n", c.label, topo, pattern)
		for _, rate := range rates {
			sim, err := spin.New(spin.Config{
				Topology:   topo,
				Routing:    c.routing,
				Scheme:     c.scheme,
				VNets:      3,
				VCsPerVNet: c.vcs,
				Traffic:    pattern,
				Rate:       rate,
				Warmup:     2000,
				Seed:       11,
			})
			if err != nil {
				log.Fatal(err)
			}
			sim.Run(10000)
			fmt.Printf("  rate %.2f: latency %7.1f  throughput %.3f  spins %d\n",
				rate, sim.AvgLatency(), sim.Throughput(), sim.Spins())
		}
	}
}
