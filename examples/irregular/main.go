// Irregular topologies: the motivating use case for SPIN's topology
// agnosticism. Power-gating or faults remove mesh links at run time; turn
// models and escape-VC designs would need re-derived routing restrictions,
// but fully-adaptive minimal routing plus SPIN works unchanged on every
// fault pattern.
package main

import (
	"fmt"
	"log"

	spin "repro"
	"repro/internal/topology"
)

func main() {
	for _, faults := range []int{0, 4, 8, 12} {
		sim, err := spin.New(spin.Config{
			Topology:   fmt.Sprintf("irregular:8x8:%d", faults),
			Routing:    "min_adaptive",
			Scheme:     "spin",
			VNets:      3,
			VCsPerVNet: 1,
			Traffic:    "uniform_random",
			Rate:       0.10,
			Warmup:     2000,
			Seed:       7,
		})
		if err != nil {
			log.Fatal(err)
		}
		irr := sim.Topology().(*topology.IrregularMesh)
		sim.Run(20000)
		ok := sim.Drain(400000)
		fmt.Printf("faulty links=%2d removed=%v\n", len(irr.RemovedPairs), irr.RemovedPairs)
		fmt.Printf("  latency=%.1f cycles, throughput=%.3f, spins=%d, drained=%v\n",
			sim.AvgLatency(), sim.Throughput(), sim.Spins(), ok)
		if !ok {
			log.Fatal("network not live — SPIN should keep any connected topology deadlock-free")
		}
	}
	fmt.Println("all fault patterns stayed live under SPIN with 1 VC")
}
