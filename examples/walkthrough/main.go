// Walkthrough: reconstructs the paper's Fig. 4 step by step. Four packets
// are table-routed into a square dependency cycle on a 2x2 mesh; the
// output traces SPIN's phases — deadlock detection (probe), spin-cycle
// announcement (move), the synchronized movement itself, and delivery.
//
// This example reaches below the public facade into the simulator and the
// SPIN agent internals so the FSM transitions are visible.
package main

import (
	"fmt"
	"log"

	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/spin"
	"repro/internal/topology"
)

func main() {
	mesh, err := topology.NewMesh(2, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	// Clockwise ring: 0 -E-> 1 -N-> 3 -W-> 2 -S-> 0. Each packet travels
	// two hops along the ring, so after its first hop it waits for the
	// buffer its successor holds: a genuine routing deadlock.
	ring := []int{0, 1, 3, 2}
	ports := []int{
		topology.MeshPort(topology.East),
		topology.MeshPort(topology.North),
		topology.MeshPort(topology.West),
		topology.MeshPort(topology.South),
	}
	table := &routing.Table{}
	for i := range ring {
		dst := ring[(i+2)%len(ring)]
		table.Set(ring[i], dst, ports[i])
		table.Set(ring[(i+1)%len(ring)], dst, ports[(i+1)%len(ring)])
	}

	scheme := spin.New(spin.Config{TDD: 16})
	net, err := sim.NewNetwork(sim.Config{
		Topology:   mesh,
		Routing:    table,
		Scheme:     scheme,
		VCsPerVNet: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	net.SetEjectHook(func(p *sim.Packet) {
		fmt.Printf("cycle %3d | %v delivered (%d hops)\n", net.Now(), p, p.Hops)
	})
	for i := range ring {
		p := net.InjectPacket(ring[i], sim.PacketSpec{Dst: ring[(i+2)%len(ring)], Length: 2})
		fmt.Printf("cycle %3d | injected %v\n", net.Now(), p)
	}

	// Trace FSM states and recovery counters as they change.
	states := make([]string, mesh.NumRouters())
	for i := range states {
		states[i] = "off"
	}
	lastSpins := int64(0)
	lastOracle := false
	for cycle := 0; cycle < 200; cycle++ {
		net.Step()
		for i, agent := range scheme.Agents() {
			if s := agent.State(); s != states[i] {
				fmt.Printf("cycle %3d | router %d FSM: %s -> %s\n", net.Now(), i, orInit(states[i]), s)
				states[i] = s
			}
		}
		if dl := net.Deadlocked(); dl != lastOracle {
			if dl {
				fmt.Printf("cycle %3d | oracle: cyclic buffer dependency present (deadlock)\n", net.Now())
			} else {
				fmt.Printf("cycle %3d | oracle: deadlock gone\n", net.Now())
			}
			lastOracle = dl
		}
		if s := net.Stats().Spins; s != lastSpins {
			fmt.Printf("cycle %3d | SPIN: synchronized movement #%d executed\n", net.Now(), s)
			lastSpins = s
		}
		if net.Stats().Ejected == 4 {
			break
		}
	}
	st := net.Stats()
	fmt.Printf("\nsummary: %d probes, %d recoveries, %d spins, %d/%d packets delivered\n",
		st.Counter("probes_sent"), st.Counter("recoveries"), st.Spins, st.Ejected, st.Injected)
}

func orInit(s string) string {
	if s == "" {
		return "off"
	}
	return s
}
